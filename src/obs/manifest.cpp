#include "obs/manifest.hpp"

#include <ctime>
#include <fstream>

#include "obs/json.hpp"
#include "util/log.hpp"

#ifndef SCAL_GIT_DESCRIBE
#define SCAL_GIT_DESCRIBE "unknown"
#endif

namespace scal::obs {

std::string git_describe() { return SCAL_GIT_DESCRIBE; }

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

std::string RunManifest::to_json() const {
  JsonObject obj;
  obj.field("label", label)
      .field("started_at", started_at)
      .field("git", git_version)
      .field("wall_seconds", wall_seconds)
      .field("jobs", jobs);

  JsonObject config;
  config.field("rms", rms)
      .field("seed", seed)
      .field("horizon", horizon)
      .field("nodes", nodes)
      .field("clusters", clusters)
      .field("estimators_per_cluster", estimators_per_cluster)
      .field("service_rate", service_rate)
      .field("heterogeneity", heterogeneity)
      .field("control_loss_probability", control_loss_probability)
      .field("mean_interarrival", mean_interarrival);
  JsonObject tuning;
  tuning.field("update_interval", update_interval)
      .field("neighborhood_size", neighborhood_size)
      .field("link_delay_scale", link_delay_scale)
      .field("volunteer_interval", volunteer_interval);
  if (control_plane) {
    tuning.field("agg_fanout", agg_fanout)
        .field("agg_batch", agg_batch)
        .field("agg_flush", agg_flush);
  }
  config.raw("tuning", tuning.str());
  if (control_plane) config.field("control_plane", true);
  obj.raw("config", config.str());

  JsonObject result;
  result.field("F", F)
      .field("G", G)
      .field("H", H)
      .field("efficiency", efficiency)
      .field("throughput", throughput)
      .field("mean_response", mean_response)
      .field("p95_response", p95_response)
      .field("G_scheduler_max_share", G_scheduler_max_share);
  obj.raw("result", result.str());

  if (!fault_spec.empty()) {
    JsonObject faults;
    faults.field("spec", fault_spec)
        .field("availability", availability)
        .field("efficiency_avail", efficiency_avail);
    obj.raw("faults", faults.str());
  }

  if (!workload_source.empty()) {
    JsonObject workload;
    workload.field("source", workload_source)
        .field("jobs", workload_jobs)
        .field("span", workload_span)
        .field("mean_interarrival", workload_mean_interarrival)
        .field("mean_exec", workload_mean_exec)
        .field("from_cache", workload_from_cache)
        .field("arrival_cache_hits", arrival_cache_hits);
    if (arrival_cache_evictions > 0) {
      workload.field("arrival_cache_evictions", arrival_cache_evictions);
    }
    if (arrival_cache_store_skips > 0) {
      workload.field("arrival_cache_store_skips", arrival_cache_store_skips);
    }
    obj.raw("workload", workload.str());
  }

  if (!result_mode.empty()) {
    JsonObject memory;
    memory.field("result_mode", result_mode)
        .field("job_log_records", job_log_records)
        .field("job_log_dropped", job_log_dropped)
        .field("arena_high_water", arena_high_water)
        .field("arena_reuses", arena_reuses);
    obj.raw("memory", memory.str());
  }

  if (control_plane) {
    JsonObject ctrl;
    ctrl.field("G_aggregator", G_aggregator)
        .field("updates_in", ctrl_updates_in)
        .field("updates_coalesced", ctrl_updates_coalesced)
        .field("coalescing_ratio", ctrl_coalescing_ratio)
        .field("batches", ctrl_batches)
        .field("tree_depth", ctrl_tree_depth);
    obj.raw("ctrl", ctrl.str());
  }

  obj.raw("counters", counters.to_json());

  if (anneal_iterations > 0) {
    JsonObject anneal;
    anneal.field("iterations", anneal_iterations)
        .field("accepted", anneal_accepted)
        .field("improving", anneal_improving)
        .field("best_objective", anneal_best_objective);
    obj.raw("anneal", anneal.str());
  }

  if (reuse_enabled) {
    JsonObject reuse;
    reuse.field("tree_shares", reuse_tree_shares)
        .field("tree_publishes", reuse_tree_publishes)
        .field("inflight_waits", reuse_inflight_waits)
        .field("disk_hits", reuse_disk_hits)
        .field("disk_entries", reuse_disk_entries);
    obj.raw("reuse", reuse.str());
  }

  if (!metrics_json.empty()) obj.raw("metrics", metrics_json);

  if (peak_rss_bytes > 0) obj.field("peak_rss_bytes", peak_rss_bytes);

  if (tuner_evaluations > 0) {
    JsonObject tuner;
    tuner.field("evaluations", tuner_evaluations)
        .field("cache_hits", tuner_cache_hits)
        .field("hit_rate", static_cast<double>(tuner_cache_hits) /
                               static_cast<double>(tuner_evaluations));
    obj.raw("tuner", tuner.str());
  }
  return obj.str();
}

bool RunManifest::append_jsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::app);
  if (!out) {
    SCAL_WARN("manifest: cannot open " << path);
    return false;
  }
  out << to_json() << '\n';
  return static_cast<bool>(out);
}

}  // namespace scal::obs
