#pragma once
// CounterRegistry: an ordered name -> value map for end-of-run counter
// snapshots (protocol message counts, event totals, drop counts).  Kept
// deliberately simple: counters are written once per run by the grid
// layer and serialized into the run manifest.

#include <cstdint>
#include <string>
#include <vector>

namespace scal::obs {

class CounterRegistry {
 public:
  struct Counter {
    std::string name;
    double value = 0.0;
    bool integral = true;
  };

  void set(const std::string& name, std::uint64_t value);
  void set_real(const std::string& name, double value);
  void increment(const std::string& name, std::uint64_t by = 1);

  /// Value of `name`, or 0 when absent.
  double value(const std::string& name) const noexcept;
  bool contains(const std::string& name) const noexcept;

  /// Add every counter of `other` into this registry: existing names
  /// accumulate (a real-valued side marks the sum real), new names are
  /// appended in `other`'s order.  Merging per-task registries in task
  /// order is exactly the serial accumulation — the deterministic
  /// reduction step of parallel runs.
  void merge(const CounterRegistry& other);

  std::size_t size() const noexcept { return counters_.size(); }
  bool empty() const noexcept { return counters_.empty(); }
  const std::vector<Counter>& counters() const noexcept { return counters_; }
  void clear() { counters_.clear(); }

  /// One JSON object {"name": value, ...} in insertion order.
  std::string to_json() const;

 private:
  Counter* find(const std::string& name) noexcept;
  const Counter* find(const std::string& name) const noexcept;

  std::vector<Counter> counters_;
};

}  // namespace scal::obs
