#include "obs/probe.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "obs/json.hpp"
#include "util/log.hpp"

namespace scal::obs {

TimeSeriesProbe::TimeSeriesProbe(double interval) : interval_(interval) {
  if (!(interval_ > 0.0)) {
    throw std::invalid_argument("TimeSeriesProbe: interval must be positive");
  }
}

void TimeSeriesProbe::add(ProbeSample sample) {
  const double total = sample.F + sample.G + sample.H;
  sample.efficiency = total > 0.0 ? sample.F / total : 0.0;
  if (!samples_.empty()) {
    const ProbeSample& prev = samples_.back();
    const double dF = sample.F - prev.F;
    const double dG = sample.G - prev.G;
    const double dH = sample.H - prev.H;
    const double window = dF + dG + dH;
    sample.efficiency_windowed = window > 0.0 ? dF / window : 0.0;
  } else {
    sample.efficiency_windowed = sample.efficiency;
  }
  samples_.push_back(sample);
}

std::vector<std::string> TimeSeriesProbe::csv_header() {
  return {"t",
          "F",
          "G",
          "H",
          "efficiency",
          "efficiency_windowed",
          "pool_busy_fraction",
          "mean_resource_load",
          "scheduler_backlog",
          "middleware_backlog",
          "scheduler_util",
          "estimator_util",
          "middleware_util",
          "jobs_arrived",
          "jobs_completed",
          "events_dispatched"};
}

void TimeSeriesProbe::write_csv(std::ostream& os) const {
  bool first = true;
  for (const std::string& column : csv_header()) {
    if (!first) os << ',';
    first = false;
    os << column;
  }
  os << '\n';
  for (const ProbeSample& s : samples_) {
    // json_number doubles as a shortest-round-trip decimal formatter, so
    // the final row reproduces the result scalars digit for digit.
    os << json_number(s.at) << ',' << json_number(s.F) << ','
       << json_number(s.G) << ',' << json_number(s.H) << ','
       << json_number(s.efficiency) << ','
       << json_number(s.efficiency_windowed) << ','
       << json_number(s.pool_busy_fraction) << ','
       << json_number(s.mean_resource_load) << ',' << s.scheduler_backlog
       << ',' << s.middleware_backlog << ','
       << json_number(s.scheduler_util) << ','
       << json_number(s.estimator_util) << ','
       << json_number(s.middleware_util) << ',' << s.jobs_arrived << ','
       << s.jobs_completed << ',' << s.events_dispatched << '\n';
  }
}

bool TimeSeriesProbe::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    SCAL_WARN("probe: cannot open " << path);
    return false;
  }
  write_csv(out);
  return static_cast<bool>(out);
}

}  // namespace scal::obs
