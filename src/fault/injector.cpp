#include "fault/injector.hpp"

#include <utility>

namespace scal::fault {

FaultInjector::FaultInjector(sim::Simulator& sim, sim::EntityId id,
                             FaultPlan plan, const exec::SeedSequence& seeds,
                             std::size_t resources, std::size_t estimators,
                             std::size_t schedulers, FaultHooks hooks)
    : Entity(sim, id, "fault-injector"),
      plan_(std::move(plan)),
      estimators_(estimators),
      schedulers_(schedulers),
      hooks_(std::move(hooks)),
      estimator_phase_(seeds.at(resources + 1)),
      scheduler_phase_(seeds.at(resources + 2)) {
  plan_.validate();
  if (plan_.churn.enabled()) {
    churn_streams_.reserve(resources);
    for (std::size_t i = 0; i < resources; ++i) {
      churn_streams_.emplace_back(seeds.at(i));
    }
  }
}

void FaultInjector::start() {
  if (plan_.churn.enabled()) {
    for (std::size_t i = 0; i < churn_streams_.size(); ++i) {
      schedule_crash(i);
    }
  }
  if (plan_.estimator_blackout.enabled()) {
    for (std::size_t e = 0; e < estimators_; ++e) {
      schedule_blackout_window(
          plan_.estimator_blackout, e, /*estimator_side=*/true,
          estimator_phase_.uniform(0.0, plan_.estimator_blackout.period));
    }
  }
  if (plan_.scheduler_blackout.enabled()) {
    for (std::size_t s = 0; s < schedulers_; ++s) {
      schedule_blackout_window(
          plan_.scheduler_blackout, s, /*estimator_side=*/false,
          scheduler_phase_.uniform(0.0, plan_.scheduler_blackout.period));
    }
  }
}

void FaultInjector::schedule_crash(std::size_t resource) {
  // Lazy alternation: each event draws the time to the next one from the
  // resource's own stream, so per-resource schedules are independent and
  // the draw order is fixed (up-gap, repair, up-gap, ...).
  const double up = churn_streams_[resource].exponential(plan_.churn.mtbf);
  sim().schedule_in(up, [this, resource]() {
    ++counters_.crashes;
    if (hooks_.crash_resource) hooks_.crash_resource(resource);
    const double repair =
        churn_streams_[resource].exponential(plan_.churn.mttr);
    sim().schedule_in(repair, [this, resource]() {
      ++counters_.recoveries;
      if (hooks_.recover_resource) hooks_.recover_resource(resource);
      schedule_crash(resource);
    });
  });
}

void FaultInjector::schedule_blackout_window(const BlackoutSpec& spec,
                                             std::size_t index,
                                             bool estimator_side,
                                             double start_in) {
  sim().schedule_in(start_in, [this, &spec, index, estimator_side]() {
    ++(estimator_side ? counters_.estimator_blackouts
                      : counters_.scheduler_blackouts);
    const auto& hook =
        estimator_side ? hooks_.estimator_blackout : hooks_.scheduler_blackout;
    if (hook) hook(index, true);
    sim().schedule_in(spec.length, [this, &spec, index, estimator_side]() {
      const auto& up_hook = estimator_side ? hooks_.estimator_blackout
                                           : hooks_.scheduler_blackout;
      if (up_hook) up_hook(index, false);
      // Windows recur on a fixed cadence from each entity's phase offset.
      schedule_blackout_window(spec, index, estimator_side,
                               spec.period - spec.length);
    });
  });
}

}  // namespace scal::fault
