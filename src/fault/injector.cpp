#include "fault/injector.hpp"

#include <utility>

namespace scal::fault {

FaultInjector::FaultInjector(sim::Simulator& sim, sim::EntityId id,
                             FaultPlan plan, const exec::SeedSequence& seeds,
                             std::size_t resources, std::size_t estimators,
                             std::size_t schedulers, FaultHooks hooks,
                             std::size_t aggregators)
    : Entity(sim, id, "fault-injector"),
      plan_(std::move(plan)),
      estimators_(estimators),
      schedulers_(schedulers),
      aggregators_(aggregators),
      hooks_(std::move(hooks)),
      estimator_phase_(seeds.at(resources + 1)),
      scheduler_phase_(seeds.at(resources + 2)),
      aggregator_phase_(seeds.at(resources + 3)) {
  plan_.validate();
  if (plan_.churn.enabled()) {
    churn_streams_.reserve(resources);
    for (std::size_t i = 0; i < resources; ++i) {
      churn_streams_.emplace_back(seeds.at(i));
    }
  }
}

void FaultInjector::start() {
  if (plan_.churn.enabled()) {
    for (std::size_t i = 0; i < churn_streams_.size(); ++i) {
      schedule_crash(i);
    }
  }
  if (plan_.estimator_blackout.enabled()) {
    for (std::size_t e = 0; e < estimators_; ++e) {
      schedule_blackout_window(
          plan_.estimator_blackout, e, BlackoutSide::kEstimator,
          estimator_phase_.uniform(0.0, plan_.estimator_blackout.period));
    }
  }
  if (plan_.scheduler_blackout.enabled()) {
    for (std::size_t s = 0; s < schedulers_; ++s) {
      schedule_blackout_window(
          plan_.scheduler_blackout, s, BlackoutSide::kScheduler,
          scheduler_phase_.uniform(0.0, plan_.scheduler_blackout.period));
    }
  }
  if (plan_.aggregator_blackout.enabled()) {
    for (std::size_t a = 0; a < aggregators_; ++a) {
      schedule_blackout_window(
          plan_.aggregator_blackout, a, BlackoutSide::kAggregator,
          aggregator_phase_.uniform(0.0, plan_.aggregator_blackout.period));
    }
  }
}

void FaultInjector::schedule_crash(std::size_t resource) {
  // Lazy alternation: each event draws the time to the next one from the
  // resource's own stream, so per-resource schedules are independent and
  // the draw order is fixed (up-gap, repair, up-gap, ...).
  const double up = churn_streams_[resource].exponential(plan_.churn.mtbf);
  sim().schedule_in(up, [this, resource]() {
    ++counters_.crashes;
    if (hooks_.crash_resource) hooks_.crash_resource(resource);
    const double repair =
        churn_streams_[resource].exponential(plan_.churn.mttr);
    sim().schedule_in(repair, [this, resource]() {
      ++counters_.recoveries;
      if (hooks_.recover_resource) hooks_.recover_resource(resource);
      schedule_crash(resource);
    });
  });
}

void FaultInjector::schedule_blackout_window(const BlackoutSpec& spec,
                                             std::size_t index,
                                             BlackoutSide side,
                                             double start_in) {
  const auto counter = [this](BlackoutSide s) -> std::uint64_t& {
    switch (s) {
      case BlackoutSide::kEstimator: return counters_.estimator_blackouts;
      case BlackoutSide::kScheduler: return counters_.scheduler_blackouts;
      default: return counters_.aggregator_blackouts;
    }
  };
  const auto hook_for =
      [this](BlackoutSide s) -> const std::function<void(std::size_t, bool)>& {
    switch (s) {
      case BlackoutSide::kEstimator: return hooks_.estimator_blackout;
      case BlackoutSide::kScheduler: return hooks_.scheduler_blackout;
      default: return hooks_.aggregator_blackout;
    }
  };
  sim().schedule_in(start_in, [this, &spec, index, side, counter,
                               hook_for]() {
    ++counter(side);
    const auto& hook = hook_for(side);
    if (hook) hook(index, true);
    sim().schedule_in(spec.length, [this, &spec, index, side, hook_for]() {
      const auto& up_hook = hook_for(side);
      if (up_hook) up_hook(index, false);
      // Windows recur on a fixed cadence from each entity's phase offset.
      schedule_blackout_window(spec, index, side, spec.period - spec.length);
    });
  });
}

}  // namespace scal::fault
