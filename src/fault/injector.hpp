#pragma once
// Sim-clock-driven executor of a FaultPlan.
//
// The injector is an ordinary sim::Entity: it schedules crash/recover
// and blackout events on the shared kernel and calls back into the host
// system through a bag of std::function hooks, so it depends only on
// sim/exec/util — grid wires itself in, not the other way around.
//
// Determinism contract: every draw comes from a substream of the fault
// seed tree (fault_seeds(seed)), one stream per resource plus dedicated
// streams for message faults and blackout phases.  Fault timing is
// therefore independent of workload, topology, and policy draws, and of
// how many worker threads replay the run — the --jobs 1 vs --jobs N
// bit-identity of the sweep layer carries over unchanged.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "exec/seed_sequence.hpp"
#include "fault/plan.hpp"
#include "sim/entity.hpp"
#include "util/rng.hpp"

namespace scal::fault {

/// Root of the fault layer's substream tree for a run seeded `seed`.
/// Domain-separated (via a named RandomStream) from every other stream
/// the simulation derives from the same master seed.
inline exec::SeedSequence fault_seeds(std::uint64_t seed) {
  return exec::SeedSequence(util::RandomStream(seed, "fault-injection").bits());
}

/// Callbacks into the host system.  Unset hooks are simply not called;
/// the injector still counts the events it would have delivered.
struct FaultHooks {
  std::function<void(std::size_t resource)> crash_resource;
  std::function<void(std::size_t resource)> recover_resource;
  std::function<void(std::size_t estimator, bool down)> estimator_blackout;
  std::function<void(std::size_t scheduler, bool down)> scheduler_blackout;
  std::function<void(std::size_t aggregator, bool down)> aggregator_blackout;
};

/// Event totals, for metrics export.
struct FaultCounters {
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t estimator_blackouts = 0;   ///< windows opened
  std::uint64_t scheduler_blackouts = 0;   ///< windows opened
  std::uint64_t aggregator_blackouts = 0;  ///< windows opened
};

class FaultInjector : public sim::Entity {
 public:
  /// `seeds` must be fault_seeds(run seed).  Substream layout: index i in
  /// [0, resources) churns resource i; `resources` is reserved for the
  /// net fabric (see GridSystem); resources+1 / resources+2 / resources+3
  /// seed the estimator / scheduler / aggregator blackout phase offsets.
  /// (`aggregators` defaults to 0: a run without a control plane has no
  /// aggregation daemons to black out, and the appended substream index
  /// leaves every pre-existing stream untouched.)
  FaultInjector(sim::Simulator& sim, sim::EntityId id, FaultPlan plan,
                const exec::SeedSequence& seeds, std::size_t resources,
                std::size_t estimators, std::size_t schedulers,
                FaultHooks hooks, std::size_t aggregators = 0);

  /// Schedules the first event of every active fault class.  Call once,
  /// before sim.run(); inert plans schedule nothing.
  void start();

  const FaultCounters& counters() const noexcept { return counters_; }

  /// The substream index reserved for net-fabric message faults.
  static std::size_t net_stream_index(std::size_t resources) noexcept {
    return resources;
  }

 private:
  /// Which entity class a blackout window targets (selects hook,
  /// counter, and phase stream).
  enum class BlackoutSide { kEstimator, kScheduler, kAggregator };

  void schedule_crash(std::size_t resource);
  void schedule_blackout_window(const BlackoutSpec& spec, std::size_t index,
                                BlackoutSide side, double start_in);

  FaultPlan plan_;
  std::size_t estimators_;
  std::size_t schedulers_;
  std::size_t aggregators_;
  FaultHooks hooks_;
  FaultCounters counters_;
  std::vector<util::RandomStream> churn_streams_;  ///< one per resource
  util::RandomStream estimator_phase_;
  util::RandomStream scheduler_phase_;
  util::RandomStream aggregator_phase_;
};

}  // namespace scal::fault
