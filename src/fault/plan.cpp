#include "fault/plan.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace scal::fault {

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("fault spec: " + what);
}

double number(const std::string& key, const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    bad("'" + key + "' expects a number, got '" + text + "'");
  }
  return v;
}

std::uint32_t count(const std::string& key, const std::string& text) {
  const double v = number(key, text);
  if (v < 0.0 || v != static_cast<double>(static_cast<std::uint32_t>(v))) {
    bad("'" + key + "' expects a small non-negative integer, got '" + text +
        "'");
  }
  return static_cast<std::uint32_t>(v);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::istringstream in(text);
  std::string part;
  while (std::getline(in, part, sep)) parts.push_back(part);
  return parts;
}

void check_probability(const char* key, double p) {
  if (p < 0.0 || p >= 1.0) {
    bad(std::string(key) + " must be in [0, 1)");
  }
}

/// Trims a trailing ".000000" noise from default double formatting.
std::string fmt(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

}  // namespace

void FaultPlan::validate() const {
  if (churn.mtbf < 0.0 || churn.mttr < 0.0) {
    bad("churn mtbf/mttr must be non-negative");
  }
  if (churn.enabled() && churn.mttr <= 0.0) {
    bad("churn with mtbf > 0 requires mttr > 0");
  }
  check_probability("net drop", messages.drop);
  check_probability("net dup", messages.duplicate);
  check_probability("net delayp", messages.delay_probability);
  if (messages.delay_probability > 0.0 && messages.delay_mean <= 0.0) {
    bad("net delayp > 0 requires delaym > 0");
  }
  for (const BlackoutSpec* b :
       {&estimator_blackout, &scheduler_blackout, &aggregator_blackout}) {
    if (b->period < 0.0 || b->length < 0.0) {
      bad("blackout period/length must be non-negative");
    }
    if (b->enabled() && b->length >= b->period) {
      bad("blackout length must be shorter than its period");
    }
  }
  if (any()) {
    if (robustness.staleness_factor <= 1.0) {
      bad("robust stale factor must exceed 1 (one update interval)");
    }
    if (robustness.retry_backoff_base <= 0.0) {
      bad("robust backoff must be positive");
    }
    if (robustness.retry_budget > 16) {
      bad("robust retries capped at 16");
    }
  }
}

std::string FaultPlan::to_spec() const {
  if (!any()) return "";
  std::ostringstream out;
  const char* sep = "";
  if (churn.enabled()) {
    out << sep << "churn:mtbf=" << fmt(churn.mtbf)
        << ",mttr=" << fmt(churn.mttr);
    sep = ";";
  }
  if (messages.enabled()) {
    out << sep << "net:";
    const char* comma = "";
    if (messages.drop > 0.0) {
      out << comma << "drop=" << fmt(messages.drop);
      comma = ",";
    }
    if (messages.duplicate > 0.0) {
      out << comma << "dup=" << fmt(messages.duplicate);
      comma = ",";
    }
    if (messages.delay_probability > 0.0) {
      out << comma << "delayp=" << fmt(messages.delay_probability)
          << ",delaym=" << fmt(messages.delay_mean);
    }
    sep = ";";
  }
  if (estimator_blackout.enabled()) {
    out << sep << "est-blackout:period=" << fmt(estimator_blackout.period)
        << ",length=" << fmt(estimator_blackout.length);
    sep = ";";
  }
  if (scheduler_blackout.enabled()) {
    out << sep << "sched-blackout:period=" << fmt(scheduler_blackout.period)
        << ",length=" << fmt(scheduler_blackout.length);
    sep = ";";
  }
  if (aggregator_blackout.enabled()) {
    out << sep << "agg-blackout:period=" << fmt(aggregator_blackout.period)
        << ",length=" << fmt(aggregator_blackout.length);
    sep = ";";
  }
  // Always recorded for active plans: the manifest alone must pin the
  // robustness behavior the run actually had.
  out << sep << "robust:stale=" << fmt(robustness.staleness_factor)
      << ",retries=" << robustness.retry_budget
      << ",backoff=" << fmt(robustness.retry_backoff_base)
      << ",requeue=" << robustness.requeue_budget;
  return out.str();
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;
  for (const std::string& clause : split(spec, ';')) {
    const auto colon = clause.find(':');
    if (colon == std::string::npos) {
      bad("clause '" + clause + "' is missing ':'");
    }
    const std::string name = clause.substr(0, colon);
    for (const std::string& kv : split(clause.substr(colon + 1), ',')) {
      const auto eq = kv.find('=');
      if (eq == std::string::npos) {
        bad("'" + kv + "' in clause '" + name + "' is missing '='");
      }
      const std::string key = kv.substr(0, eq);
      const std::string val = kv.substr(eq + 1);
      if (name == "churn") {
        if (key == "mtbf") {
          plan.churn.mtbf = number(key, val);
        } else if (key == "mttr") {
          plan.churn.mttr = number(key, val);
        } else {
          bad("unknown churn key '" + key + "'");
        }
      } else if (name == "net") {
        if (key == "drop") {
          plan.messages.drop = number(key, val);
        } else if (key == "dup") {
          plan.messages.duplicate = number(key, val);
        } else if (key == "delayp") {
          plan.messages.delay_probability = number(key, val);
        } else if (key == "delaym") {
          plan.messages.delay_mean = number(key, val);
        } else {
          bad("unknown net key '" + key + "'");
        }
      } else if (name == "est-blackout" || name == "sched-blackout" ||
                 name == "agg-blackout") {
        BlackoutSpec& b = name == "est-blackout"
                              ? plan.estimator_blackout
                              : (name == "sched-blackout"
                                     ? plan.scheduler_blackout
                                     : plan.aggregator_blackout);
        if (key == "period") {
          b.period = number(key, val);
        } else if (key == "length") {
          b.length = number(key, val);
        } else {
          bad("unknown blackout key '" + key + "'");
        }
      } else if (name == "robust") {
        if (key == "stale") {
          plan.robustness.staleness_factor = number(key, val);
        } else if (key == "retries") {
          plan.robustness.retry_budget = count(key, val);
        } else if (key == "backoff") {
          plan.robustness.retry_backoff_base = number(key, val);
        } else if (key == "requeue") {
          plan.robustness.requeue_budget = count(key, val);
        } else {
          bad("unknown robust key '" + key + "'");
        }
      } else {
        bad("unknown clause '" + name + "'");
      }
    }
  }
  plan.validate();
  return plan;
}

}  // namespace scal::fault
