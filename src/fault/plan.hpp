#pragma once
// Declarative fault schedules for a managed-grid run.
//
// A FaultPlan is pure configuration: which fault classes are active and
// their parameters.  It lives on GridConfig so a faulty run is exactly
// as reproducible as a clean one — the plan round-trips through a spec
// string ("churn:mtbf=400,mttr=40;net:drop=0.05") that the run manifest
// records, and every stochastic draw it implies comes from dedicated
// exec::SeedSequence substreams (see fault::FaultInjector).  A
// default-constructed plan is inert: any() is false, no streams are
// created, and the simulation is bit-identical to a build without the
// fault subsystem.

#include <cstdint>
#include <string>

namespace scal::fault {

/// Resource crash/recover churn: every resource alternates an UP phase
/// of Exp(mtbf) with a DOWN phase of Exp(mttr), drawn from its own
/// substream.  mtbf == 0 disables churn.
struct ChurnSpec {
  double mtbf = 0.0;  ///< mean time between failures (sim time units)
  double mttr = 0.0;  ///< mean time to repair
  bool enabled() const noexcept { return mtbf > 0.0; }
};

/// Control-message faults at the net fabric (unreliable path only; job
/// transfers stay reliable).  Each message draws independent drop /
/// extra-delay / duplication decisions from the fault substream.
struct MessageFaultSpec {
  double drop = 0.0;               ///< drop probability
  double duplicate = 0.0;          ///< duplication probability
  double delay_probability = 0.0;  ///< probability of extra delay
  double delay_mean = 0.0;         ///< mean of the Exp extra delay
  bool enabled() const noexcept {
    return drop > 0.0 || duplicate > 0.0 || delay_probability > 0.0;
  }
};

/// Periodic outage windows for RMS control entities (estimators or
/// schedulers): every `period`, the entity is down for `length`.
/// Per-entity phase offsets are drawn once from the fault substream so
/// replicated entities do not fail in lockstep.
struct BlackoutSpec {
  double period = 0.0;  ///< window cadence; 0 disables
  double length = 0.0;  ///< down time per window
  bool enabled() const noexcept { return period > 0.0 && length > 0.0; }
};

/// Parameters of the RMS robustness mixin that GridSystem switches on
/// for every policy whenever any fault class is active.
struct RobustnessParams {
  /// Status-table entries older than factor x update_interval are
  /// treated as referring to a down resource and evicted from placement
  /// scans.  Resources heartbeat at half this window (suppression is
  /// bounded) so live-but-quiet nodes are never evicted.
  double staleness_factor = 4.0;
  /// Protocol rounds (polls, probes) that time out with zero replies
  /// retry up to this many times before falling back to local placement.
  std::uint32_t retry_budget = 2;
  /// First retry delay; doubles per attempt (exponential backoff).
  double retry_backoff_base = 5.0;
  /// Crash-killed jobs re-enter their cluster scheduler at most this
  /// many times; exhausting the budget loses the job (counted).
  std::uint32_t requeue_budget = 3;
};

/// The full fault schedule of one run.
struct FaultPlan {
  ChurnSpec churn;
  MessageFaultSpec messages;
  BlackoutSpec estimator_blackout;
  BlackoutSpec scheduler_blackout;
  /// Outage windows for the control plane's aggregation daemons.  A
  /// blacked-out aggregator flushes its pending buffer upstream on the
  /// way down (failover flush) and relays unbuffered while down; inert
  /// when the run has no control plane (no aggregators exist).
  BlackoutSpec aggregator_blackout;
  RobustnessParams robustness;

  /// True when at least one fault class is active.  False means the run
  /// is bit-identical to one with no fault subsystem at all.
  bool any() const noexcept {
    return churn.enabled() || messages.enabled() ||
           estimator_blackout.enabled() || scheduler_blackout.enabled() ||
           aggregator_blackout.enabled();
  }

  /// Throws std::invalid_argument on out-of-range parameters.
  void validate() const;

  /// Round-trippable spec string; "" for an inert plan.  The robustness
  /// clause is included whenever any fault class is enabled, so a
  /// manifest alone reproduces the run.
  std::string to_spec() const;

  /// Parse a spec string:
  ///   spec    := "" | clause (';' clause)*
  ///   clause  := name ':' key '=' value (',' key '=' value)*
  ///   name    := churn | net | est-blackout | sched-blackout
  ///            | agg-blackout | robust
  /// Keys: churn: mtbf, mttr; net: drop, dup, delayp, delaym;
  /// blackouts: period, length; robust: stale, retries, backoff, requeue.
  /// Throws std::invalid_argument on malformed input.
  static FaultPlan parse(const std::string& spec);
};

}  // namespace scal::fault
