#pragma once
// A single FIFO work server.
//
// Schedulers, estimators, and the grid middleware are modeled as servers:
// each incoming action (process one status update, make one placement
// decision, handle one poll) is a work item with an explicit service cost.
// The server processes items one at a time; its accumulated busy time is
// exactly the overhead quantity G(k) the paper measures ("the overall time
// spent by the schedulers for scheduling, receiving, and processing
// updates").  Saturation — queue growth when offered load exceeds one —
// is what makes a centralized RMS overhead blow up at scale.

#include <cstdint>
#include <deque>

#include "obs/trace.hpp"
#include "sim/entity.hpp"
#include "sim/event_queue.hpp"

namespace scal::sim {

class Server : public Entity {
 public:
  using Entity::Entity;

  /// Enqueue a work item costing `cost >= 0` time units; `done` runs when
  /// service completes (may be empty).
  void submit(Time cost, EventFn done);

  /// Total time this server has spent serving items.
  Time busy_time() const noexcept { return busy_time_; }
  /// Total service cost ever submitted (busy time + backlog).
  Time offered_work() const noexcept { return offered_work_; }
  /// Work-in-system time: busy time plus the time-integral of the
  /// waiting queue.  Equals the summed sojourn of work items.  This is
  /// the overhead quantity G(k) uses: for a server that keeps up it is
  /// ~= busy_time(), and it diverges superlinearly exactly when the
  /// manager saturates — the signature the scalability metric must
  /// expose for a bottlenecked RMS.
  Time work_in_system_time() const noexcept {
    return busy_time_ + queue_time_integral();
  }
  /// Items fully served.
  std::uint64_t completed() const noexcept { return completed_; }
  /// Items currently waiting (excluding the one in service).
  std::size_t queue_length() const noexcept { return queue_.size(); }
  bool busy() const noexcept { return in_service_; }
  /// Time-integral of queue length (for mean-queue statistics).
  double queue_time_integral() const noexcept;
  /// Largest backlog observed.
  std::size_t max_queue_length() const noexcept { return max_queue_; }

  /// Fault hook: while down the server discards every submitted item
  /// (the work is never offered, so it cannot inflate G) and going down
  /// drops the waiting queue; an item already in service completes
  /// normally.  Up by default; the only cost when never used is one
  /// boolean test in submit().
  void set_down(bool down);
  bool down() const noexcept { return down_; }
  /// Items discarded because the server was down.
  std::uint64_t items_discarded() const noexcept { return discarded_; }

  /// Telemetry hook: record a B/E busy span on `tid` of `trace` for
  /// every service period.  Null detaches; the disabled cost in the
  /// service path is one pointer test.
  void attach_trace(obs::TraceRecorder* trace, obs::TraceTid tid) noexcept {
    trace_ = trace;
    trace_tid_ = tid;
  }
  /// Close a span left open by an item still in service (call once after
  /// the simulation ends so exported traces have matched B/E pairs).
  void close_open_span(Time at) {
    if (trace_ != nullptr && in_service_) trace_->end(trace_tid_, at);
  }

  /// Rewind to the just-constructed state (reusable-system path): drop
  /// the queue and the item in service, zero every counter and the
  /// queue-integral clock.  Identity and the attached trace survive.
  /// The completion event of an in-service item lives in the simulator
  /// queue, which the caller clears alongside.
  void reset_server();

 private:
  struct Item {
    Time cost;
    EventFn done;
  };

  void start_next();
  void finish_service();
  void note_queue_change();

  std::deque<Item> queue_;
  // Completion callable of the item in service.  Held in a member so the
  // scheduled completion event captures only `this` (stays inline in the
  // event arena) instead of nesting the user callable inside another
  // closure.
  EventFn current_done_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::TraceTid trace_tid_ = 0;
  bool in_service_ = false;
  bool down_ = false;
  std::uint64_t discarded_ = 0;
  Time busy_time_ = 0.0;
  Time offered_work_ = 0.0;
  std::uint64_t completed_ = 0;
  std::size_t max_queue_ = 0;
  mutable Time last_queue_change_ = 0.0;
  mutable double queue_integral_ = 0.0;
};

}  // namespace scal::sim
