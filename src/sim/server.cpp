#include "sim/server.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace scal::sim {

void Server::note_queue_change() {
  const Time t = now();
  queue_integral_ += static_cast<double>(queue_.size()) *
                     (t - last_queue_change_);
  last_queue_change_ = t;
}

double Server::queue_time_integral() const noexcept {
  // Fold in the un-accounted tail up to the current time.
  const Time t = now();
  return queue_integral_ +
         static_cast<double>(queue_.size()) * (t - last_queue_change_);
}

void Server::reset_server() {
  queue_.clear();
  current_done_.reset();
  in_service_ = false;
  down_ = false;
  discarded_ = 0;
  busy_time_ = 0.0;
  offered_work_ = 0.0;
  completed_ = 0;
  max_queue_ = 0;
  last_queue_change_ = 0.0;
  queue_integral_ = 0.0;
}

void Server::set_down(bool down) {
  if (down == down_) return;
  down_ = down;
  if (down && !queue_.empty()) {
    note_queue_change();
    discarded_ += queue_.size();
    queue_.clear();
  }
}

void Server::submit(Time cost, EventFn done) {
  if (!(cost >= 0.0)) throw std::invalid_argument("Server: negative cost");
  if (down_) {
    ++discarded_;
    return;
  }
  note_queue_change();
  offered_work_ += cost;
  queue_.push_back(Item{cost, std::move(done)});
  max_queue_ = std::max(max_queue_, queue_.size());
  if (!in_service_) start_next();
}

void Server::start_next() {
  if (queue_.empty()) {
    in_service_ = false;
    return;
  }
  note_queue_change();
  Item item = std::move(queue_.front());
  queue_.pop_front();
  in_service_ = true;
  busy_time_ += item.cost;
  if (trace_ != nullptr) {
    trace_->begin(trace_tid_, "serve", "server", now(),
                  {{"cost", item.cost},
                   {"backlog", static_cast<double>(queue_.size())}});
  }
  current_done_ = std::move(item.done);
  sim().schedule_in(item.cost, [this]() { finish_service(); });
}

void Server::finish_service() {
  ++completed_;
  if (trace_ != nullptr) trace_->end(trace_tid_, now());
  // Detach before invoking: the callable may submit more work, which
  // would overwrite current_done_ when service starts.
  EventFn done = std::move(current_done_);
  if (done) done();
  start_next();
}

}  // namespace scal::sim
