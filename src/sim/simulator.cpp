#include "sim/simulator.hpp"

#include <cmath>
#include <stdexcept>

namespace scal::sim {

EventId Simulator::schedule_in(Time delay, EventFn fn) {
  if (!(delay >= 0.0) || std::isnan(delay)) {
    throw std::invalid_argument("Simulator: negative or NaN delay");
  }
  return queue_.push(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(Time at, EventFn fn) {
  if (at < now_ || std::isnan(at)) {
    throw std::invalid_argument("Simulator: scheduling into the past");
  }
  return queue_.push(at, std::move(fn));
}

void Simulator::reset() {
  if (running_) throw std::logic_error("Simulator::reset during run");
  queue_.clear();
  now_ = kTimeZero;
  dispatched_ = 0;
  observe_every_ = 0;
  dispatch_observer_ = nullptr;
  stop_requested_ = false;
}

std::uint64_t Simulator::run(Time until) {
  if (running_) throw std::logic_error("Simulator::run is not reentrant");
  running_ = true;
  stop_requested_ = false;
  std::uint64_t count = 0;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.peek_time() > until) break;
    auto ev = queue_.pop();
    now_ = ev.at;
    ev.fn();
    ++count;
    ++dispatched_;
    if (observe_every_ != 0 && dispatched_ % observe_every_ == 0) {
      dispatch_observer_(now_, dispatched_, queue_.size());
    }
  }
  // If we reached the horizon (queue drained or next event beyond it),
  // advance the clock to it so measurements see a consistent end time.
  if (!stop_requested_ && until < kTimeInfinity && now_ < until) {
    now_ = until;
  }
  running_ = false;
  return count;
}

}  // namespace scal::sim
