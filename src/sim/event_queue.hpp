#pragma once
// The pending-event set of the discrete-event kernel.
//
// Ties on timestamp are broken by insertion sequence so that a run is a
// deterministic function of the schedule order — the property the whole
// scalability procedure's reproducibility rests on.
//
// Layout: an indexed binary min-heap of slot indices over a pooled,
// free-listed event arena.  Event closures live in a small-buffer
// callable inside the slot, so steady-state churn performs no per-event
// allocation; each slot records its heap position, so cancel() removes
// the event eagerly in O(log n) with no hash lookups.  An EventId packs
// (generation << 32 | slot); the generation is bumped whenever a slot is
// released, which makes stale handles (already fired or cancelled)
// detectable in O(1).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "util/inline_fn.hpp"

namespace scal::sim {

using EventId = std::uint64_t;

/// Inline capture budget for event closures.  Sized so the kernel's
/// hottest captures — a full grid::RmsMessage (~120 bytes) plus the
/// routing context of the middleware relay chain — stay allocation-free;
/// larger captures fall back to the heap transparently.
inline constexpr std::size_t kEventInlineCapacity = 184;
using EventFn = util::InlineFn<kEventInlineCapacity>;

class EventQueue {
 public:
  /// Insert an event; returns its id (usable with cancel()).
  EventId push(Time at, EventFn fn);

  /// Cancel a pending event, removing it from the heap immediately.
  /// Safe to call on ids that already fired or were already cancelled;
  /// returns true only if the event was still pending.
  bool cancel(EventId id);

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  Time next_time() const;
  /// next_time() without the emptiness check; precondition: !empty().
  Time peek_time() const noexcept { return heap_.front().at; }

  /// Pop the earliest live event.  Precondition: !empty().
  struct Popped {
    Time at;
    EventId id;
    EventFn fn;
  };
  Popped pop();

  std::uint64_t total_pushed() const noexcept { return pushed_; }

  /// Drop every pending event and rewind to the just-constructed state,
  /// keeping the arena allocation.  Live closures are destroyed, every
  /// generation of a previously-live slot is bumped (stale EventIds from
  /// the cleared run cannot cancel events of the next one), and the
  /// insertion sequence restarts at zero so timestamp tie-breaking — and
  /// therefore the next run's dispatch order — matches a freshly
  /// constructed queue bit for bit.
  void clear();

  /// Arena slots currently held (live + free-listed); exposed for tests.
  std::size_t arena_size() const noexcept { return slots_.size(); }

 private:
  static constexpr std::uint32_t kNoFree = 0xFFFFFFFFu;

  /// 4-ary heap: half the levels of a binary heap, and the children of
  /// a node are contiguous, so the extra comparisons per level stay in
  /// the same cache lines.  Pop-heavy discrete-event churn is dominated
  /// by sift-down, which this favors.
  static constexpr std::size_t kArity = 4;

  struct Slot {
    EventFn fn;
    std::uint32_t gen = 0;  // bumped on release; stale ids mismatch
    // Position of this slot's entry in heap_ while live; while free,
    // reused as the next-free link of the arena free list.
    std::uint32_t heap_pos = 0;
  };

  /// The ordering keys live in the heap entries themselves, so sifting
  /// touches only the contiguous heap array — never the (much larger)
  /// slots — keeping the comparison path cache-resident.
  struct HeapEntry {
    Time at;
    std::uint64_t seq;   // insertion sequence; breaks timestamp ties
    std::uint32_t slot;  // arena index of the event's callable
  };

  static EventId make_id(std::uint32_t gen, std::uint32_t slot) noexcept {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  /// True if heap entry `a` fires before `b`.
  static bool before(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  /// Remove the heap entry at `pos` (swap-with-last + re-sift).
  void heap_erase(std::size_t pos);
  /// Return a slot to the free list and invalidate outstanding ids.
  void release_slot(std::uint32_t slot);

  std::vector<HeapEntry> heap_;  // binary min-heap by (at, seq)
  std::vector<Slot> slots_;      // pooled arena of callables
  std::uint32_t free_head_ = kNoFree;
  std::uint64_t pushed_ = 0;
};

}  // namespace scal::sim
