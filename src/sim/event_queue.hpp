#pragma once
// The pending-event set of the discrete-event kernel.
//
// Ties on timestamp are broken by insertion sequence so that a run is a
// deterministic function of the schedule order — the property the whole
// scalability procedure's reproducibility rests on.

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace scal::sim {

using EventId = std::uint64_t;
using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Insert an event; returns its id (usable with cancel()).
  EventId push(Time at, EventFn fn);

  /// Lazily cancel a pending event.  Safe to call on ids that already
  /// fired; returns true if the event was still pending.
  bool cancel(EventId id);

  bool empty() const noexcept { return live_ == 0; }
  std::size_t size() const noexcept { return live_; }

  Time next_time() const;

  /// Pop the earliest live event.  Precondition: !empty().
  struct Popped {
    Time at;
    EventId id;
    EventFn fn;
  };
  Popped pop();

  std::uint64_t total_pushed() const noexcept { return next_id_; }

 private:
  struct Entry {
    Time at;
    EventId id;
    EventFn fn;
    bool cancelled = false;
  };
  struct Later {
    // Min-heap: earliest time first; ties by smaller id (insertion order).
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  void skip_cancelled();

  std::vector<Entry> heap_;
  std::unordered_set<EventId> pending_;    // ids not yet fired or cancelled
  std::unordered_set<EventId> cancelled_;  // ids cancelled while pending
  std::size_t live_ = 0;
  EventId next_id_ = 0;
};

}  // namespace scal::sim
