#pragma once
// Sequential discrete-event simulation kernel.
//
// This stands in for the Parsec simulation environment the paper used:
// entities exchange timed events; the kernel advances virtual time to the
// next event and dispatches it.  A run is deterministic for a fixed
// schedule order and RNG seed.

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace scal::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  Time now() const noexcept { return now_; }

  /// Schedule `fn` to run `delay >= 0` after now.
  EventId schedule_in(Time delay, EventFn fn);

  /// Schedule `fn` at absolute time `at >= now()`.
  EventId schedule_at(Time at, EventFn fn);

  /// Cancel a pending event; returns true if it had not yet fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Run until the queue drains or virtual time would exceed `until`.
  /// Events at exactly `until` still run.  Returns events dispatched.
  std::uint64_t run(Time until = kTimeInfinity);

  /// Request that run() return after the current event completes.
  void stop() noexcept { stop_requested_ = true; }

  /// Rewind to the just-constructed state for another run: drop every
  /// pending event (keeping the queue's arena allocation), zero the
  /// clock and dispatch counter, and detach the dispatch observer.  The
  /// next run over this kernel is bit-identical to one over a fresh
  /// Simulator given the same schedule sequence.
  void reset();

  bool idle() const noexcept { return queue_.empty(); }
  std::size_t pending_events() const noexcept { return queue_.size(); }
  std::uint64_t dispatched_events() const noexcept { return dispatched_; }

  /// Telemetry hook: call `fn(now, dispatched, pending)` once every
  /// `every` dispatched events.  Sampling (rather than per-event
  /// callbacks) keeps kernel instrumentation from distorting overhead
  /// measurements; `every = 0` detaches the observer, and the disabled
  /// cost is a single integer test per event.
  using DispatchObserver =
      std::function<void(Time now, std::uint64_t dispatched,
                         std::size_t pending)>;
  void set_dispatch_observer(std::uint64_t every, DispatchObserver fn) {
    observe_every_ = fn ? every : 0;
    dispatch_observer_ = std::move(fn);
  }

 private:
  EventQueue queue_;
  Time now_ = kTimeZero;
  std::uint64_t dispatched_ = 0;
  std::uint64_t observe_every_ = 0;
  DispatchObserver dispatch_observer_;
  bool stop_requested_ = false;
  bool running_ = false;
};

}  // namespace scal::sim
