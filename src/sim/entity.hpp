#pragma once
// Base class for simulated components (resources, schedulers, estimators,
// middleware, the network fabric).  An entity owns no threads — it is a
// bag of event handlers scheduled on the shared kernel.

#include <cstdint>
#include <string>

#include "sim/simulator.hpp"

namespace scal::sim {

using EntityId = std::uint32_t;

class Entity {
 public:
  Entity(Simulator& sim, EntityId id, std::string name)
      : sim_(&sim), id_(id), name_(std::move(name)) {}
  virtual ~Entity() = default;

  Entity(const Entity&) = delete;
  Entity& operator=(const Entity&) = delete;

  EntityId id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  Time now() const noexcept { return sim_->now(); }

 protected:
  Simulator& sim() noexcept { return *sim_; }
  const Simulator& sim() const noexcept { return *sim_; }

 private:
  Simulator* sim_;
  EntityId id_;
  std::string name_;
};

}  // namespace scal::sim
