#include "sim/entity.hpp"

// Entity is header-only today; this TU anchors the vtable.

namespace scal::sim {}
