#include "sim/event_queue.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace scal::sim {

EventId EventQueue::push(Time at, EventFn fn) {
  std::uint32_t slot;
  if (free_head_ != kNoFree) {
    slot = free_head_;
    free_head_ = slots_[slot].heap_pos;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.heap_pos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(HeapEntry{at, pushed_++, slot});
  sift_up(heap_.size() - 1);
  return make_id(s.gen, slot);
}

bool EventQueue::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return false;
  // The generation is bumped every time a slot is released, so it matches
  // the handle exactly while (and only while) the event is still pending.
  if (slots_[slot].gen != gen) return false;
  heap_erase(slots_[slot].heap_pos);
  release_slot(slot);
  return true;
}

Time EventQueue::next_time() const {
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time: empty");
  return heap_.front().at;
}

EventQueue::Popped EventQueue::pop() {
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: empty");
  const HeapEntry top = heap_.front();
  Slot& s = slots_[top.slot];
  Popped out{top.at, make_id(s.gen, top.slot), std::move(s.fn)};
  heap_erase(0);
  release_slot(top.slot);
  return out;
}

void EventQueue::sift_up(std::size_t pos) {
  const HeapEntry moving = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / kArity;
    if (!before(moving, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slots_[heap_[pos].slot].heap_pos = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = moving;
  slots_[moving.slot].heap_pos = static_cast<std::uint32_t>(pos);
}

void EventQueue::sift_down(std::size_t pos) {
  const HeapEntry moving = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = kArity * pos + 1;
    if (first >= n) break;
    std::size_t child = first;
    const std::size_t last = first + kArity < n ? first + kArity : n;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[child])) child = c;
    }
    if (!before(heap_[child], moving)) break;
    heap_[pos] = heap_[child];
    slots_[heap_[pos].slot].heap_pos = static_cast<std::uint32_t>(pos);
    pos = child;
  }
  heap_[pos] = moving;
  slots_[moving.slot].heap_pos = static_cast<std::uint32_t>(pos);
}

void EventQueue::heap_erase(std::size_t pos) {
  assert(pos < heap_.size());
  const std::size_t last = heap_.size() - 1;
  if (pos != last) {
    heap_[pos] = heap_[last];
    slots_[heap_[pos].slot].heap_pos = static_cast<std::uint32_t>(pos);
    heap_.pop_back();
    // The replacement came from the bottom, so it can only need to move
    // down — unless its new parent is later than it (possible when it
    // came from a different subtree), in which case sift up.
    if (pos > 0 && before(heap_[pos], heap_[(pos - 1) / kArity])) {
      sift_up(pos);
    } else {
      sift_down(pos);
    }
  } else {
    heap_.pop_back();
  }
}

void EventQueue::clear() {
  for (const HeapEntry& entry : heap_) {
    Slot& s = slots_[entry.slot];
    s.fn.reset();
    ++s.gen;
  }
  heap_.clear();
  // Rebuild the free list ascending so the next run pops slots 0, 1, 2,
  // ... — the same order a fresh queue allocates them in.
  free_head_ = kNoFree;
  for (std::size_t i = slots_.size(); i-- > 0;) {
    slots_[i].heap_pos = free_head_;
    free_head_ = static_cast<std::uint32_t>(i);
  }
  pushed_ = 0;
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();
  ++s.gen;  // invalidate outstanding handles
  s.heap_pos = free_head_;
  free_head_ = slot;
}

}  // namespace scal::sim
