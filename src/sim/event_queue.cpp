#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace scal::sim {

EventId EventQueue::push(Time at, EventFn fn) {
  const EventId id = next_id_++;
  heap_.push_back(Entry{at, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  pending_.insert(id);
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (pending_.erase(id) == 0) return false;
  cancelled_.insert(id);
  assert(live_ > 0);
  --live_;
  return true;
}

void EventQueue::skip_cancelled() {
  while (!heap_.empty() && cancelled_.count(heap_.front().id) != 0) {
    cancelled_.erase(heap_.front().id);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

Time EventQueue::next_time() const {
  const_cast<EventQueue*>(this)->skip_cancelled();
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time: empty");
  return heap_.front().at;
}

EventQueue::Popped EventQueue::pop() {
  skip_cancelled();
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: empty");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  pending_.erase(e.id);
  assert(live_ > 0);
  --live_;
  return Popped{e.at, e.id, std::move(e.fn)};
}

}  // namespace scal::sim
