#pragma once
// Simulation time.  The paper works in abstract "time units" (T_CPU = 700
// time units); we keep time as a double in those units.

namespace scal::sim {

using Time = double;

inline constexpr Time kTimeZero = 0.0;
inline constexpr Time kTimeInfinity = 1e300;

}  // namespace scal::sim
