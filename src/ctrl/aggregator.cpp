#include "ctrl/aggregator.hpp"

#include <stdexcept>
#include <utility>

namespace scal::ctrl {

Aggregator::Aggregator(
    sim::Simulator& sim, sim::EntityId id, net::NodeId node,
    double process_cost, double forward_cost,
    std::function<void(std::vector<grid::StatusUpdate>)> forward)
    : Server(sim, id, "aggregator"), node_(node),
      process_cost_(process_cost), forward_cost_(forward_cost),
      forward_(std::move(forward)) {
  if (!(process_cost_ >= 0.0) || !(forward_cost_ >= 0.0)) {
    throw std::invalid_argument("Aggregator: negative costs");
  }
  if (!forward_) {
    throw std::invalid_argument("Aggregator: null forward callback");
  }
}

void Aggregator::configure(std::uint32_t max_batch, double flush_interval) {
  if (max_batch == 0) {
    throw std::invalid_argument("Aggregator: max_batch must be >= 1");
  }
  max_batch_ = max_batch;
  flush_interval_ = flush_interval;
}

void Aggregator::ingest(std::vector<grid::StatusUpdate> updates) {
  if (updates.empty()) return;
  if (blackout_) {
    // Failover relay: children effectively re-parent to the grandparent,
    // so traffic keeps flowing but this host does no work (and charges
    // nothing to G) while it is down.
    forward_(std::move(updates));
    return;
  }
  // The cost must be read before the capture-init moves the vector:
  // argument evaluation order is unspecified.
  const double cost = process_cost_ * static_cast<double>(updates.size());
  updates_in_ += updates.size();
  submit(cost, [this, ups = std::move(updates)]() mutable {
           if (blackout_) {
             // Went down while the bundle sat in the work queue: relay.
             forward_(std::move(ups));
             return;
           }
           for (auto& u : ups) absorb(std::move(u));
           maybe_flush();
         });
}

void Aggregator::absorb(grid::StatusUpdate update) {
  for (Pending& p : buffer_) {
    if (p.update.cluster == update.cluster &&
        p.update.resource == update.resource) {
      // Coalesce: the newer view supersedes the buffered one.  The hold
      // clock restarts — staleness is measured from the surviving
      // update's buffering, which is what actually gets forwarded.
      p.update = std::move(update);
      p.buffered_at = now();
      ++coalesced_;
      ++buffer_absorbed_;
      return;
    }
  }
  buffer_.push_back(Pending{std::move(update), now()});
}

void Aggregator::maybe_flush() {
  if (buffer_.empty()) return;
  if (buffer_.size() >= max_batch_ || flush_interval_ <= 0.0) {
    flush();
    return;
  }
  if (!timer_armed_) {
    timer_armed_ = true;
    sim().schedule_in(flush_interval_, [this]() {
      timer_armed_ = false;
      if (!blackout_) flush();
    });
  }
}

void Aggregator::flush() {
  if (buffer_.empty()) return;
  const std::uint64_t absorbed = buffer_absorbed_;
  buffer_absorbed_ = 0;
  submit(forward_cost_, [this, absorbed]() { forward_buffer(absorbed); });
}

void Aggregator::forward_buffer(std::uint64_t absorbed) {
  if (buffer_.empty()) return;
  std::vector<grid::StatusUpdate> batch;
  batch.reserve(buffer_.size());
  for (Pending& p : buffer_) {
    if (hop_delay_hist_ != nullptr) {
      hop_delay_hist_->record(now() - p.buffered_at);
    }
    batch.push_back(std::move(p.update));
  }
  buffer_.clear();
  ++batches_;
  updates_out_ += batch.size();
  if (coalescing_hist_ != nullptr) {
    coalescing_hist_->record(static_cast<double>(absorbed));
  }
  forward_(std::move(batch));
}

void Aggregator::set_blackout(bool down) {
  if (down == blackout_) return;
  if (down && !buffer_.empty()) {
    // Failover flush: the dying host hands its spool upstream at zero
    // cost so pending (already charged-for) updates are never lost.
    forward_buffer(buffer_absorbed_);
    buffer_absorbed_ = 0;
  }
  blackout_ = down;
}

void Aggregator::reset() {
  reset_server();
  buffer_.clear();
  buffer_absorbed_ = 0;
  timer_armed_ = false;
  blackout_ = false;
  updates_in_ = 0;
  updates_out_ = 0;
  coalesced_ = 0;
  batches_ = 0;
  coalescing_hist_ = nullptr;
  hop_delay_hist_ = nullptr;
}

}  // namespace scal::ctrl
