#include "ctrl/tree.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace scal::ctrl {

std::uint32_t AggregationTree::depth() const noexcept {
  std::uint32_t deepest = 0;
  // parent[i] < i for every heap link, so one forward pass suffices.
  std::vector<std::uint32_t> hops(members.size(), 0);
  for (std::size_t i = 0; i < members.size(); ++i) {
    hops[i] = parent[i] == kToRoot
                  ? 1
                  : hops[static_cast<std::size_t>(parent[i])] + 1;
    deepest = std::max(deepest, hops[i]);
  }
  return deepest;
}

AggregationTree build_tree(const net::Router& router, net::NodeId root,
                           std::vector<net::NodeId> members,
                           std::uint32_t fanout) {
  if (fanout == 0) {
    throw std::invalid_argument("build_tree: fanout must be >= 1");
  }
  if (root == net::kInvalidNode) {
    throw std::invalid_argument("build_tree: invalid root node");
  }
  AggregationTree tree;
  tree.root = root;

  // Order members by routed latency from the root (ties by node id so
  // the order is total).  Unreachable members sort last — the grid's
  // graphs are connected, but the tree must stay well-defined anyway.
  struct Keyed {
    double latency;
    net::NodeId node;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(members.size());
  for (const net::NodeId m : members) {
    const net::RouteInfo info = router.route(root, m);
    keyed.push_back({info.reachable
                         ? info.latency
                         : std::numeric_limits<double>::infinity(),
                     m});
  }
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    if (a.latency != b.latency) return a.latency < b.latency;
    return a.node < b.node;
  });
  tree.members.reserve(keyed.size());
  for (const Keyed& k : keyed) tree.members.push_back(k.node);

  rewire(tree, fanout);
  return tree;
}

void rewire(AggregationTree& tree, std::uint32_t fanout) {
  if (fanout == 0) {
    throw std::invalid_argument("rewire: fanout must be >= 1");
  }
  tree.fanout = fanout;
  tree.parent.assign(tree.members.size(), kToRoot);
  // d-ary heap over the member order: the first `fanout` members attach
  // to the root, member i >= fanout to member (i - fanout) / fanout.
  // Nearby (low-latency) members sit high in the tree, so the long-haul
  // hops are taken once, near the root.
  for (std::size_t i = fanout; i < tree.members.size(); ++i) {
    tree.parent[i] =
        static_cast<std::int32_t>((i - fanout) / fanout);
  }
}

}  // namespace scal::ctrl
