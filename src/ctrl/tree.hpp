#pragma once
// Fan-out aggregation trees: the forwarding overlay of the control
// plane (docs/CONTROL_PLANE.md).  Real resource managers avoid the
// O(resources) point-to-point status flood with a d-ary forwarding tree
// rooted at the collector — Slurm's agent tree is the canonical example.
// Here each (cluster, estimator) pair gets one tree: the estimator's
// node is the root, the cluster's resource nodes are the members, and
// status updates climb member -> parent -> ... -> root, coalescing at
// every hop.
//
// Shape contract: members are ordered by (routed latency from the root,
// node id) — network-aware, deterministic, and independent of the
// fan-out degree — and the parent links form a d-ary heap over that
// order.  Because the member order never depends on the fan-out, a
// tuner that moves the fan-out enabler only re-links parents (rewire);
// the member set, and therefore the simulation's entity arena, is
// stable across reset cycles.

#include <cstdint>
#include <vector>

#include "net/routing.hpp"

namespace scal::ctrl {

/// parent[] value meaning "forwards straight to the root collector".
inline constexpr std::int32_t kToRoot = -1;

struct AggregationTree {
  net::NodeId root = net::kInvalidNode;
  /// Member nodes in (latency from root, node id) order; fixed for a
  /// given (graph, root, member set) regardless of fanout.
  std::vector<net::NodeId> members;
  /// parent[i] indexes members, or kToRoot for the root's children.
  std::vector<std::int32_t> parent;
  std::uint32_t fanout = 1;

  /// Longest member-to-root path in hops (0 for an empty tree; 1 when
  /// every member is a root child, i.e. fanout >= member count).
  std::uint32_t depth() const noexcept;
};

/// Build the tree for `root` over `members` with degree `fanout >= 1`.
/// Deterministic in (graph, root, members, fanout); throws
/// std::invalid_argument on fanout == 0 or an invalid root.
AggregationTree build_tree(const net::Router& router, net::NodeId root,
                           std::vector<net::NodeId> members,
                           std::uint32_t fanout);

/// Re-link parents for a new fanout, keeping the member order (and so
/// the hosting entities) untouched.  Throws on fanout == 0.
void rewire(AggregationTree& tree, std::uint32_t fanout);

}  // namespace scal::ctrl
