#pragma once
// One node of the control plane's aggregation tree (docs/CONTROL_PLANE.md).
//
// An aggregator is a cheap forwarding daemon modeled, like every other
// RMS component, as a FIFO work server: each arriving status update is
// vetted at `process_cost`, coalesced into the pending buffer (a newer
// update for the same resource REPLACES the buffered one — status is
// idempotent, only the latest view matters), and forwarded upstream in
// batches at `forward_cost` per batch.  Coalescing is the control
// plane's G-reduction mechanism: an absorbed update never reaches the
// estimator or the scheduler, so their per-update costs are never paid —
// bought at a staleness price the `status_staleness` histogram exposes.
//
// A batch leaves when the buffer reaches `max_batch`, or when the flush
// timer (`flush_interval` after the first buffered update) fires; a
// flush_interval <= 0 forwards right after processing (no added hold).
//
// Failover semantics (aggregator blackouts, src/fault): going down
// flushes the pending buffer upstream at zero cost — the daemon's host
// hands its spool to the parent before dying, so no update is lost —
// and while down, arriving updates relay straight upstream, unbuffered
// and uncharged (children re-parent to the grandparent).  Zero-fault
// runs never touch this path.
//
// The payload type is grid::StatusUpdate (a header-only value struct);
// delivery up the tree is a callback the owning system wires in, so
// this library depends on sim/net/obs only — grid links ctrl, never the
// other way around.

#include <cstdint>
#include <functional>
#include <vector>

#include "grid/messages.hpp"
#include "net/graph.hpp"
#include "obs/histogram.hpp"
#include "sim/server.hpp"

namespace scal::ctrl {

class Aggregator : public sim::Server {
 public:
  /// `forward` ships a finished batch one hop upstream (parent
  /// aggregator or the root collector); the owner wires in the network
  /// hop.  Costs are in simulated time units of server work.
  Aggregator(sim::Simulator& sim, sim::EntityId id, net::NodeId node,
             double process_cost, double forward_cost,
             std::function<void(std::vector<grid::StatusUpdate>)> forward);

  /// (Re)apply the batching knobs; called at build and by every reset
  /// cycle (the tuner moves these).  max_batch >= 1.
  void configure(std::uint32_t max_batch, double flush_interval);

  /// A bundle of updates arrives (network delay already paid).  Charges
  /// process_cost per update, then coalesces into the pending buffer.
  void ingest(std::vector<grid::StatusUpdate> updates);

  /// Blackout hook.  Going down performs the zero-cost failover flush;
  /// while down, ingest() relays unbuffered and uncharged.
  void set_blackout(bool down);
  bool blacked_out() const noexcept { return blackout_; }

  net::NodeId node() const noexcept { return node_; }
  std::uint64_t updates_in() const noexcept { return updates_in_; }
  std::uint64_t updates_out() const noexcept { return updates_out_; }
  std::uint64_t updates_coalesced() const noexcept { return coalesced_; }
  std::uint64_t batches_out() const noexcept { return batches_; }

  /// Attach (optional) distribution probes: `coalescing` records the
  /// updates absorbed per forwarded batch, `hop_delay` the buffering
  /// delay each forwarded update spent at this hop.  Observational only.
  void attach_probes(obs::Histogram* coalescing,
                     obs::Histogram* hop_delay) noexcept {
    coalescing_hist_ = coalescing;
    hop_delay_hist_ = hop_delay;
  }

  /// Rewind to the just-constructed state (reusable-system path):
  /// buffer, timer, counters, blackout, and probes are dropped; node,
  /// costs, and forward wiring survive.  configure() is re-applied by
  /// the owner afterwards.
  void reset();

 private:
  struct Pending {
    grid::StatusUpdate update;
    sim::Time buffered_at = 0.0;
  };

  void absorb(grid::StatusUpdate update);
  void maybe_flush();
  void flush();
  void forward_buffer(std::uint64_t absorbed);

  net::NodeId node_;
  double process_cost_;
  double forward_cost_;
  std::function<void(std::vector<grid::StatusUpdate>)> forward_;

  std::uint32_t max_batch_ = 1;
  double flush_interval_ = 0.0;

  std::vector<Pending> buffer_;
  std::uint64_t buffer_absorbed_ = 0;  ///< coalesced into current buffer
  bool timer_armed_ = false;
  bool blackout_ = false;

  std::uint64_t updates_in_ = 0;
  std::uint64_t updates_out_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t batches_ = 0;

  obs::Histogram* coalescing_hist_ = nullptr;
  obs::Histogram* hop_delay_hist_ = nullptr;
};

}  // namespace scal::ctrl
