#pragma once
// Process-wide memo of settled shortest-path source trees, keyed on a
// 128-bit topology digest (net::graph_digest covers node count and every
// link's endpoint/latency/bandwidth) plus the source node.  Parallel
// session slots, SA restart chains, and per-RMS sweeps all route over
// bit-identical graphs; sharing the trees means each source is settled
// once per process instead of once per GridSystem (the PR 5 profiling
// carry-over).
//
// Entries are immutable TreeSnapshot values behind shared_ptr, so
// concurrent readers never observe a mutating Dijkstra frontier.  A
// router that needs to settle *further* than a snapshot reaches clones
// the snapshot into a private tree and extends that copy (copy-on-
// extend), publishing the deeper state back; publication is
// first-publish-wins with strictly-deeper upgrades, and every snapshot
// agrees on its settled prefix (Dijkstra finalizes in global distance
// order), so which snapshot a reader adopts can never change a route.
//
// The memo is byte-budgeted like workload::ArrivalCache: set_max_bytes
// (or SCAL_TREE_CACHE_BYTES at first use) caps the resident payload,
// evicting oldest-first when a publish would exceed it.

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <shared_mutex>
#include <unordered_map>

#include "net/routing.hpp"

namespace scal::net {

/// 128-bit structural fingerprint of a graph: node count plus every
/// link's (to, latency, bandwidth) in adjacency order.  Two graphs with
/// equal digests route identically, so their source trees are
/// interchangeable.
std::array<std::uint64_t, 2> graph_digest(const Graph& graph);

class SharedTreeCache {
 public:
  using Key = std::array<std::uint64_t, 2>;

  /// The process-wide instance every sharing Router consults.  The
  /// first call reads SCAL_TREE_CACHE_BYTES (bytes; unset or 0 keeps
  /// the cache unbounded) into the byte budget.
  static SharedTreeCache& instance();

  /// The cached snapshot for (topology, src), or null.  Counts a share
  /// or a miss.  Read-mostly: concurrent lookups take a shared lock.
  std::shared_ptr<const TreeSnapshot> lookup(const Key& topology,
                                             NodeId src);

  /// Publish a snapshot for (topology, src).  First-publish-wins; a
  /// later snapshot replaces the entry only when strictly deeper
  /// (more settled nodes), so racing publishers of the same settle
  /// depth keep the canonical first entry.  Returns the entry now in
  /// the cache (the prior one when the publish lost the race, possibly
  /// `snapshot` unstored when the byte budget rejects it).
  std::shared_ptr<const TreeSnapshot> publish(
      const Key& topology, NodeId src,
      std::shared_ptr<const TreeSnapshot> snapshot);

  /// Byte budget for resident snapshots; 0 = unbounded (the default).
  void set_max_bytes(std::size_t bytes);
  std::size_t max_bytes() const;
  /// Total snapshot payload bytes currently resident.
  std::size_t bytes() const;

  std::uint64_t shares() const;     ///< lookups answered (trees adopted)
  std::uint64_t misses() const;     ///< lookups that found nothing
  std::uint64_t publishes() const;  ///< snapshots accepted (incl. upgrades)
  std::uint64_t upgrades() const;   ///< publishes replacing a shallower one
  std::uint64_t evictions() const;  ///< entries dropped for the byte budget
  std::size_t size() const;         ///< resident (topology, src) entries

  /// Drop every entry and zero the counters (tests and benches; the
  /// simulation never needs it — snapshots are pure functions of their
  /// keys).  Routers holding adopted snapshots keep them alive; the
  /// byte budget is kept.
  void clear();

 private:
  struct EntryKey {
    Key topology{};
    NodeId src = 0;
    bool operator==(const EntryKey& other) const noexcept {
      return topology == other.topology && src == other.src;
    }
  };
  struct EntryKeyHash {
    std::size_t operator()(const EntryKey& k) const noexcept {
      // The topology key is already a high-quality digest; fold in src.
      return static_cast<std::size_t>(
          k.topology[0] ^ (k.topology[1] * 0x9E3779B97F4A7C15ull) ^
          (static_cast<std::uint64_t>(k.src) * 0xC2B2AE3D27D4EB4Full));
    }
  };

  /// Evict oldest-first until the payload fits the budget (lock held).
  void enforce_budget_locked();

  mutable std::shared_mutex mutex_;
  std::unordered_map<EntryKey, std::shared_ptr<const TreeSnapshot>,
                     EntryKeyHash>
      entries_;
  std::deque<EntryKey> insertion_order_;  // FIFO eviction order
  std::size_t bytes_ = 0;
  std::size_t max_bytes_ = 0;  // 0 = unbounded
  // Share/miss counters are bumped under the shared lock, so they are
  // atomics; the rest only mutates under the exclusive lock but stays
  // atomic for lock-free accessors.
  std::atomic<std::uint64_t> shares_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> publishes_{0};
  std::atomic<std::uint64_t> upgrades_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace scal::net
