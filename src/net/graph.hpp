#pragma once
// Undirected weighted graph: the router-level substrate the grid is
// mapped onto.  Links carry latency (time units) and bandwidth (units of
// message size per time unit).

#include <cstdint>
#include <span>
#include <vector>

namespace scal::net {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = ~NodeId{0};

struct Link {
  NodeId to = kInvalidNode;
  double latency = 1.0;    ///< propagation delay per traversal
  double bandwidth = 1.0;  ///< size units per time unit
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t nodes) : adj_(nodes) {}

  NodeId add_node();
  /// Add an undirected edge; both directions share latency/bandwidth.
  void add_edge(NodeId a, NodeId b, double latency, double bandwidth);

  std::size_t node_count() const noexcept { return adj_.size(); }
  std::size_t edge_count() const noexcept { return edges_; }

  std::span<const Link> neighbors(NodeId n) const;
  std::size_t degree(NodeId n) const { return adj_.at(n).size(); }
  bool has_edge(NodeId a, NodeId b) const;

  /// BFS reachability from node 0.
  bool connected() const;

  /// Degree sequence (sorted descending) — used by topology tests.
  std::vector<std::size_t> degree_sequence() const;

 private:
  std::vector<std::vector<Link>> adj_;
  std::size_t edges_ = 0;
};

}  // namespace scal::net
