#include "net/metrics.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

namespace scal::net {

namespace {

/// BFS hop distances from one source; unreachable = max().
std::vector<std::uint32_t> bfs_hops(const Graph& g, NodeId src) {
  std::vector<std::uint32_t> dist(
      g.node_count(), std::numeric_limits<std::uint32_t>::max());
  std::queue<NodeId> q;
  dist[src] = 0;
  q.push(src);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (const Link& l : g.neighbors(u)) {
      if (dist[l.to] == std::numeric_limits<std::uint32_t>::max()) {
        dist[l.to] = dist[u] + 1;
        q.push(l.to);
      }
    }
  }
  return dist;
}

}  // namespace

GraphMetrics analyze_graph(const Graph& graph, std::size_t sampled_sources,
                           util::RandomStream& rng) {
  GraphMetrics m;
  m.nodes = graph.node_count();
  m.edges = graph.edge_count();
  if (m.nodes == 0) return m;
  m.mean_degree = 2.0 * static_cast<double>(m.edges) /
                  static_cast<double>(m.nodes);

  const auto degrees = graph.degree_sequence();
  m.max_degree = degrees.empty() ? 0 : degrees.front();

  // Hub endpoint share: endpoints owned by the top decile of degrees.
  const std::size_t top = std::max<std::size_t>(1, m.nodes / 10);
  std::size_t hub_endpoints = 0;
  for (std::size_t i = 0; i < top && i < degrees.size(); ++i) {
    hub_endpoints += degrees[i];
  }
  if (m.edges > 0) {
    m.hub_endpoint_share =
        static_cast<double>(hub_endpoints) / (2.0 * static_cast<double>(m.edges));
  }

  // Path statistics over sampled sources.
  const std::size_t samples = std::min(sampled_sources, m.nodes);
  std::vector<std::size_t> sources;
  if (samples == m.nodes) {
    sources.resize(m.nodes);
    for (std::size_t i = 0; i < m.nodes; ++i) sources[i] = i;
  } else {
    sources = rng.sample_without_replacement(m.nodes, samples);
  }
  double hop_sum = 0.0;
  std::size_t hop_count = 0;
  for (const std::size_t s : sources) {
    const auto dist = bfs_hops(graph, static_cast<NodeId>(s));
    for (const std::uint32_t d : dist) {
      if (d != std::numeric_limits<std::uint32_t>::max() && d > 0) {
        hop_sum += d;
        ++hop_count;
        m.diameter = std::max<std::size_t>(m.diameter, d);
      }
    }
  }
  if (hop_count > 0) {
    m.mean_path_hops = hop_sum / static_cast<double>(hop_count);
  }

  // Global clustering coefficient (transitivity).
  std::uint64_t triangles3 = 0;  // 3 x number of triangles (ordered)
  std::uint64_t triples = 0;
  for (NodeId v = 0; v < m.nodes; ++v) {
    const auto nbrs = graph.neighbors(v);
    const std::size_t d = nbrs.size();
    if (d >= 2) triples += d * (d - 1) / 2;
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = i + 1; j < d; ++j) {
        if (graph.has_edge(nbrs[i].to, nbrs[j].to)) ++triangles3;
      }
    }
  }
  if (triples > 0) {
    m.clustering = static_cast<double>(triangles3) /
                   static_cast<double>(triples);
  }
  return m;
}

}  // namespace scal::net
