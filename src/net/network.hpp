#pragma once
// The message fabric: delivers payloads between graph nodes with the
// routed end-to-end delay.  The RMS "network link delay" scaling enabler
// from the paper (Tables 2-5) is modeled as a multiplicative delay scale:
// tuning it below 1.0 represents provisioning faster control links and is
// penalized by cost elsewhere (the tuner trades it against efficiency).

#include <cstdint>
#include <optional>

#include "net/routing.hpp"
#include "obs/phase_profiler.hpp"
#include "sim/entity.hpp"
#include "util/rng.hpp"

namespace scal::net {

/// Control-message fault model (fault subsystem): per-message drop /
/// duplication / extra-delay decisions on a dedicated stream.  Applies
/// to the unreliable path only and composes with (runs after) the
/// legacy set_loss check, so enabling it never perturbs the draw
/// sequence of existing loss-injection runs.
struct NetFaults {
  double drop = 0.0;               ///< independent drop probability
  double duplicate = 0.0;          ///< probability of a second delivery
  double delay_probability = 0.0;  ///< probability of extra latency
  double delay_mean = 0.0;         ///< mean of the Exp extra latency
  bool any() const noexcept {
    return drop > 0.0 || duplicate > 0.0 || delay_probability > 0.0;
  }
};

class Network : public sim::Entity {
 public:
  Network(sim::Simulator& sim, sim::EntityId id, const Graph& graph)
      : Entity(sim, id, "network"), router_(graph) {}

  /// Deliver `on_arrival` after the routed delay for a message of `size`
  /// units from `src` to `dst`.  src == dst delivers after zero delay
  /// (still via the event queue, preserving causal ordering).
  void send(NodeId src, NodeId dst, double size,
            sim::EventFn on_arrival);

  /// Like send(), but subject to the configured control-message loss
  /// probability (failure injection).  A dropped message simply never
  /// arrives; protocols must tolerate that via timeouts/idempotence.
  void send_unreliable(NodeId src, NodeId dst, double size,
                       sim::EventFn on_arrival);

  /// Enable loss injection.  p in [0, 1); the stream seeds the drop
  /// decisions so runs stay deterministic.
  void set_loss(double probability, util::RandomStream rng);
  double loss_probability() const noexcept { return loss_probability_; }
  std::uint64_t messages_dropped() const noexcept { return dropped_; }

  /// Enable the fault-subsystem message model.  Each unreliable message
  /// draws, in fixed order and only for the classes enabled, drop ->
  /// extra delay -> duplication, so disabled classes consume no draws.
  void set_faults(const NetFaults& faults, util::RandomStream rng);
  std::uint64_t messages_duplicated() const noexcept { return duplicated_; }
  std::uint64_t messages_delayed() const noexcept { return delayed_; }

  /// One-way delay this fabric would charge right now.
  double predict_delay(NodeId src, NodeId dst, double size) const;

  void set_delay_scale(double scale);
  double delay_scale() const noexcept { return delay_scale_; }

  const Router& router() const noexcept { return router_; }

  /// Opt the router into the process-wide shared source-tree cache
  /// under `key` (net::graph_digest of this fabric's graph).  Routes
  /// are bit-identical shared or not; see net/tree_cache.hpp.
  void enable_tree_sharing(const std::array<std::uint64_t, 2>& key) noexcept {
    router_.enable_tree_sharing(key);
  }

  /// Attach the (optional) phase profiler: forwarded to the router, so
  /// the phase times shortest-path settling work (not per-message
  /// bookkeeping — warm route lookups are a few ns and would drown in
  /// timer overhead).  Purely observational.
  void attach_profiler(obs::PhaseProfiler* profiler,
                       obs::PhaseId route_phase) noexcept {
    router_.attach_profiler(profiler, route_phase);
  }

  std::uint64_t messages_sent() const noexcept { return messages_; }
  double bytes_sent() const noexcept { return bytes_; }

  /// Zero the traffic and fault counters for a fresh run over the same
  /// fabric (reusable-system path).  The router's lazily settled
  /// shortest-path trees are deliberately kept warm: routes depend only
  /// on the immutable graph (the delay-scale enabler applies at query
  /// time), and re-settling them dominates the cost of a cold run.  The
  /// caller re-arms set_loss / set_faults with fresh streams so the
  /// stochastic layers replay exactly like a fresh build.
  void reset_counters() noexcept {
    messages_ = 0;
    bytes_ = 0.0;
    dropped_ = 0;
    duplicated_ = 0;
    delayed_ = 0;
  }

 private:
  Router router_;
  double delay_scale_ = 1.0;
  std::uint64_t messages_ = 0;
  double bytes_ = 0.0;
  double loss_probability_ = 0.0;
  std::optional<util::RandomStream> loss_rng_;
  std::uint64_t dropped_ = 0;
  NetFaults faults_;
  std::optional<util::RandomStream> fault_rng_;
  std::uint64_t duplicated_ = 0;
  std::uint64_t delayed_ = 0;
};

}  // namespace scal::net
