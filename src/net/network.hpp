#pragma once
// The message fabric: delivers payloads between graph nodes with the
// routed end-to-end delay.  The RMS "network link delay" scaling enabler
// from the paper (Tables 2-5) is modeled as a multiplicative delay scale:
// tuning it below 1.0 represents provisioning faster control links and is
// penalized by cost elsewhere (the tuner trades it against efficiency).

#include <cstdint>
#include <functional>
#include <optional>

#include "net/routing.hpp"
#include "sim/entity.hpp"
#include "util/rng.hpp"

namespace scal::net {

class Network : public sim::Entity {
 public:
  Network(sim::Simulator& sim, sim::EntityId id, const Graph& graph)
      : Entity(sim, id, "network"), router_(graph) {}

  /// Deliver `on_arrival` after the routed delay for a message of `size`
  /// units from `src` to `dst`.  src == dst delivers after zero delay
  /// (still via the event queue, preserving causal ordering).
  void send(NodeId src, NodeId dst, double size,
            std::function<void()> on_arrival);

  /// Like send(), but subject to the configured control-message loss
  /// probability (failure injection).  A dropped message simply never
  /// arrives; protocols must tolerate that via timeouts/idempotence.
  void send_unreliable(NodeId src, NodeId dst, double size,
                       std::function<void()> on_arrival);

  /// Enable loss injection.  p in [0, 1); the stream seeds the drop
  /// decisions so runs stay deterministic.
  void set_loss(double probability, util::RandomStream rng);
  double loss_probability() const noexcept { return loss_probability_; }
  std::uint64_t messages_dropped() const noexcept { return dropped_; }

  /// One-way delay this fabric would charge right now.
  double predict_delay(NodeId src, NodeId dst, double size) const;

  void set_delay_scale(double scale);
  double delay_scale() const noexcept { return delay_scale_; }

  const Router& router() const noexcept { return router_; }

  std::uint64_t messages_sent() const noexcept { return messages_; }
  double bytes_sent() const noexcept { return bytes_; }

 private:
  Router router_;
  double delay_scale_ = 1.0;
  std::uint64_t messages_ = 0;
  double bytes_ = 0.0;
  double loss_probability_ = 0.0;
  std::optional<util::RandomStream> loss_rng_;
  std::uint64_t dropped_ = 0;
};

}  // namespace scal::net
