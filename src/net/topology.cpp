#include "net/topology.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace scal::net {

std::string to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kPreferentialAttachment: return "pref-attach";
    case TopologyKind::kWaxman: return "waxman";
    case TopologyKind::kRingLattice: return "ring-lattice";
    case TopologyKind::kStar: return "star";
    case TopologyKind::kTransitStub: return "transit-stub";
  }
  return "?";
}

namespace {

double draw_latency(const TopologyConfig& config, util::RandomStream& rng) {
  return rng.uniform(config.latency_min, config.latency_max);
}

Graph make_pref_attach(const TopologyConfig& config,
                       util::RandomStream& rng) {
  const std::size_t n = config.nodes;
  const std::size_t m = std::max<std::size_t>(1, config.pa_edges_per_node);
  Graph g(n);
  if (n == 1) return g;

  // Seed clique over the first m+1 nodes keeps the graph connected and
  // gives the attachment process a non-degenerate start.
  const std::size_t seed = std::min(n, m + 1);
  std::vector<NodeId> endpoint_bag;  // node repeated once per incident edge
  for (std::size_t a = 0; a < seed; ++a) {
    for (std::size_t b = a + 1; b < seed; ++b) {
      g.add_edge(static_cast<NodeId>(a), static_cast<NodeId>(b),
                 draw_latency(config, rng), config.bandwidth);
      endpoint_bag.push_back(static_cast<NodeId>(a));
      endpoint_bag.push_back(static_cast<NodeId>(b));
    }
  }

  for (std::size_t v = seed; v < n; ++v) {
    std::vector<NodeId> targets;
    targets.reserve(m);
    // Draw m distinct targets weighted by degree (bag sampling).
    std::size_t guard = 0;
    while (targets.size() < std::min(m, v) && guard < 64 * m) {
      ++guard;
      const auto pick = endpoint_bag[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(endpoint_bag.size()) - 1))];
      bool dup = pick == static_cast<NodeId>(v);
      for (const NodeId t : targets) dup = dup || t == pick;
      if (!dup) targets.push_back(pick);
    }
    if (targets.empty()) targets.push_back(static_cast<NodeId>(v - 1));
    for (const NodeId t : targets) {
      g.add_edge(static_cast<NodeId>(v), t, draw_latency(config, rng),
                 config.bandwidth);
      endpoint_bag.push_back(static_cast<NodeId>(v));
      endpoint_bag.push_back(t);
    }
  }
  return g;
}

Graph make_waxman(const TopologyConfig& config, util::RandomStream& rng) {
  const std::size_t n = config.nodes;
  Graph g(n);
  if (n <= 1) return g;

  // Place nodes on the unit square.
  std::vector<std::pair<double, double>> pos(n);
  for (auto& p : pos) p = {rng.uniform(), rng.uniform()};
  const double max_dist = std::sqrt(2.0);

  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const double dx = pos[a].first - pos[b].first;
      const double dy = pos[a].second - pos[b].second;
      const double d = std::sqrt(dx * dx + dy * dy);
      const double p = config.waxman_alpha *
                       std::exp(-d / (config.waxman_beta * max_dist));
      if (rng.bernoulli(p)) {
        g.add_edge(static_cast<NodeId>(a), static_cast<NodeId>(b),
                   draw_latency(config, rng), config.bandwidth);
      }
    }
  }
  // Stitch any disconnected prefix: connect node i to a random earlier
  // node if it ended up isolated from the BFS tree of node 0.  A simple
  // chain pass guarantees connectivity while barely perturbing degrees.
  for (std::size_t v = 1; v < n; ++v) {
    if (g.degree(static_cast<NodeId>(v)) == 0) {
      const auto t = static_cast<NodeId>(
          rng.uniform_int(0, static_cast<std::int64_t>(v) - 1));
      g.add_edge(static_cast<NodeId>(v), t, draw_latency(config, rng),
                 config.bandwidth);
    }
  }
  if (!g.connected()) {
    // Rare with sane parameters: link consecutive components via a chain.
    for (std::size_t v = 1; v < n && !g.connected(); ++v) {
      if (!g.has_edge(static_cast<NodeId>(v - 1), static_cast<NodeId>(v))) {
        g.add_edge(static_cast<NodeId>(v - 1), static_cast<NodeId>(v),
                   draw_latency(config, rng), config.bandwidth);
      }
    }
  }
  return g;
}

Graph make_ring_lattice(const TopologyConfig& config,
                        util::RandomStream& rng) {
  const std::size_t n = config.nodes;
  const std::size_t k = std::max<std::size_t>(1, config.lattice_neighbors);
  Graph g(n);
  if (n <= 1) return g;
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t j = 1; j <= k; ++j) {
      const std::size_t w = (v + j) % n;
      if (v == w || g.has_edge(static_cast<NodeId>(v), static_cast<NodeId>(w))) {
        continue;
      }
      g.add_edge(static_cast<NodeId>(v), static_cast<NodeId>(w),
                 draw_latency(config, rng), config.bandwidth);
    }
  }
  return g;
}

Graph make_transit_stub(const TopologyConfig& config,
                        util::RandomStream& rng) {
  const std::size_t n = config.nodes;
  Graph g(n);
  if (n <= 1) return g;

  const std::size_t domains = std::max<std::size_t>(1, config.ts_transit_domains);
  const std::size_t per_domain = std::max<std::size_t>(1, config.ts_transit_size);
  const std::size_t transit_total = std::min(n, domains * per_domain);

  const double backbone_latency_scale =
      1.0 / std::max(1.0, config.ts_backbone_speedup);
  auto transit_latency = [&] {
    return backbone_latency_scale * draw_latency(config, rng);
  };

  // Transit domains: dense small cliques of routers [0, transit_total).
  for (std::size_t d = 0; d < domains; ++d) {
    const std::size_t lo = d * per_domain;
    const std::size_t hi = std::min(transit_total, lo + per_domain);
    for (std::size_t a = lo; a < hi; ++a) {
      for (std::size_t b = a + 1; b < hi; ++b) {
        g.add_edge(static_cast<NodeId>(a), static_cast<NodeId>(b),
                   transit_latency(), config.bandwidth);
      }
    }
  }
  // Backbone: ring over the domains (first router of each), plus one
  // random chord per domain when there are enough domains.
  for (std::size_t d = 0; d + 1 < domains && (d + 1) * per_domain < transit_total;
       ++d) {
    g.add_edge(static_cast<NodeId>(d * per_domain),
               static_cast<NodeId>((d + 1) * per_domain), transit_latency(),
               config.bandwidth);
  }
  if (domains > 2 && (domains - 1) * per_domain < transit_total) {
    g.add_edge(static_cast<NodeId>(0),
               static_cast<NodeId>((domains - 1) * per_domain),
               transit_latency(), config.bandwidth);
  }

  // Stub domains: remaining nodes grouped into chunks of ts_stub_size,
  // wired as a hub-plus-ring, hung off a random transit router.
  std::size_t next = transit_total;
  while (next < n) {
    const std::size_t size = std::min(config.ts_stub_size, n - next);
    const std::size_t hub = next;
    const auto attach = static_cast<NodeId>(rng.uniform_int(
        0, static_cast<std::int64_t>(transit_total) - 1));
    g.add_edge(static_cast<NodeId>(hub), attach, draw_latency(config, rng),
               config.bandwidth);
    for (std::size_t i = 1; i < size; ++i) {
      g.add_edge(static_cast<NodeId>(hub), static_cast<NodeId>(next + i),
                 draw_latency(config, rng), config.bandwidth);
      // Ring chord inside the stub for a little path diversity.
      if (i >= 2) {
        g.add_edge(static_cast<NodeId>(next + i),
                   static_cast<NodeId>(next + i - 1),
                   draw_latency(config, rng), config.bandwidth);
      }
    }
    next += size;
  }
  return g;
}

Graph make_star(const TopologyConfig& config, util::RandomStream& rng) {
  const std::size_t n = config.nodes;
  Graph g(n);
  for (std::size_t v = 1; v < n; ++v) {
    g.add_edge(0, static_cast<NodeId>(v), draw_latency(config, rng),
               config.bandwidth);
  }
  return g;
}

}  // namespace

Graph generate_topology(const TopologyConfig& config,
                        util::RandomStream& rng) {
  if (config.nodes == 0) {
    throw std::invalid_argument("generate_topology: zero nodes");
  }
  if (!(config.latency_min >= 0.0) ||
      !(config.latency_max >= config.latency_min) ||
      !(config.bandwidth > 0.0)) {
    throw std::invalid_argument("generate_topology: bad link parameters");
  }
  Graph g;
  switch (config.kind) {
    case TopologyKind::kPreferentialAttachment:
      g = make_pref_attach(config, rng);
      break;
    case TopologyKind::kWaxman:
      g = make_waxman(config, rng);
      break;
    case TopologyKind::kRingLattice:
      g = make_ring_lattice(config, rng);
      break;
    case TopologyKind::kStar:
      g = make_star(config, rng);
      break;
    case TopologyKind::kTransitStub:
      g = make_transit_stub(config, rng);
      break;
  }
  return g;
}

}  // namespace scal::net
