#include "net/graph.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace scal::net {

NodeId Graph::add_node() {
  adj_.emplace_back();
  return static_cast<NodeId>(adj_.size() - 1);
}

void Graph::add_edge(NodeId a, NodeId b, double latency, double bandwidth) {
  if (a >= adj_.size() || b >= adj_.size()) {
    throw std::out_of_range("Graph::add_edge: node out of range");
  }
  if (a == b) throw std::invalid_argument("Graph::add_edge: self-loop");
  if (!(latency >= 0.0) || !(bandwidth > 0.0)) {
    throw std::invalid_argument("Graph::add_edge: bad link parameters");
  }
  adj_[a].push_back(Link{b, latency, bandwidth});
  adj_[b].push_back(Link{a, latency, bandwidth});
  ++edges_;
}

std::span<const Link> Graph::neighbors(NodeId n) const {
  return std::span<const Link>(adj_.at(n));
}

bool Graph::has_edge(NodeId a, NodeId b) const {
  const auto& nbrs = adj_.at(a);
  return std::any_of(nbrs.begin(), nbrs.end(),
                     [b](const Link& l) { return l.to == b; });
}

bool Graph::connected() const {
  if (adj_.empty()) return true;
  std::vector<char> seen(adj_.size(), 0);
  std::queue<NodeId> frontier;
  frontier.push(0);
  seen[0] = 1;
  std::size_t visited = 1;
  while (!frontier.empty()) {
    const NodeId n = frontier.front();
    frontier.pop();
    for (const Link& l : adj_[n]) {
      if (!seen[l.to]) {
        seen[l.to] = 1;
        ++visited;
        frontier.push(l.to);
      }
    }
  }
  return visited == adj_.size();
}

std::vector<std::size_t> Graph::degree_sequence() const {
  std::vector<std::size_t> deg;
  deg.reserve(adj_.size());
  for (const auto& nbrs : adj_) deg.push_back(nbrs.size());
  std::sort(deg.begin(), deg.end(), std::greater<>());
  return deg;
}

}  // namespace scal::net
