#pragma once
// Synthetic topology generation.
//
// The paper extracts topologies from the Mercator Internet mapper [16],
// which is unavailable (it probed the 2000-era Internet).  Router-level
// Mercator maps exhibit heavy-tailed degree distributions, so our primary
// substitute is a preferential-attachment generator; Waxman and ring-
// lattice generators are provided for sensitivity tests.  All generators
// are seeded and deterministic and always produce connected graphs.

#include <cstdint>
#include <string>

#include "net/graph.hpp"
#include "util/rng.hpp"

namespace scal::net {

enum class TopologyKind {
  kPreferentialAttachment,  ///< Barabasi-Albert style; power-law degrees
  kWaxman,                  ///< geometric random graph, Waxman link prob.
  kRingLattice,             ///< ring + chords; regular degrees (tests)
  kStar,                    ///< hub and spokes (tests, CENTRAL worst case)
  kTransitStub,             ///< hierarchical transit/stub domains; the
                            ///< closest structural match to the Mercator
                            ///< router-level maps the paper extracted
};

std::string to_string(TopologyKind kind);

struct TopologyConfig {
  TopologyKind kind = TopologyKind::kPreferentialAttachment;
  std::size_t nodes = 100;

  /// Preferential attachment: edges added per new node.
  std::size_t pa_edges_per_node = 2;

  /// Waxman parameters (alpha: max link prob, beta: distance decay).
  double waxman_alpha = 0.4;
  double waxman_beta = 0.25;

  /// Ring lattice: neighbors on each side.
  std::size_t lattice_neighbors = 2;

  /// Transit-stub: transit domains form a backbone ring with chords;
  /// each transit node hangs stub domains of roughly this size.
  std::size_t ts_transit_domains = 3;
  std::size_t ts_transit_size = 4;   ///< nodes per transit domain
  std::size_t ts_stub_size = 8;      ///< target nodes per stub domain
  /// Transit links are this much faster (lower latency) than stub links.
  double ts_backbone_speedup = 4.0;

  /// Link latency drawn uniform from [latency_min, latency_max].  The
  /// defaults keep end-to-end control latency small relative to job
  /// service times so the efficiency band stays holdable when Case 2
  /// shrinks service times 6x (see EXPERIMENTS.md).
  double latency_min = 0.1;
  double latency_max = 0.5;
  /// All links share this bandwidth (size units / time unit).
  double bandwidth = 100.0;
};

/// Generate a connected topology from the config and RNG stream.
Graph generate_topology(const TopologyConfig& config,
                        util::RandomStream& rng);

}  // namespace scal::net
