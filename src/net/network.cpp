#include "net/network.hpp"

#include <stdexcept>

namespace scal::net {

void Network::set_delay_scale(double scale) {
  if (!(scale > 0.0)) {
    throw std::invalid_argument("Network: delay scale must be positive");
  }
  delay_scale_ = scale;
}

double Network::predict_delay(NodeId src, NodeId dst, double size) const {
  if (src == dst) return 0.0;
  return delay_scale_ * router_.delay(src, dst, size);
}

void Network::send(NodeId src, NodeId dst, double size,
                   sim::EventFn on_arrival) {
  const double d = predict_delay(src, dst, size);
  ++messages_;
  bytes_ += size;
  sim().schedule_in(d, std::move(on_arrival));
}

void Network::set_loss(double probability, util::RandomStream rng) {
  if (!(probability >= 0.0) || !(probability < 1.0)) {
    throw std::invalid_argument("Network: loss probability in [0, 1)");
  }
  loss_probability_ = probability;
  loss_rng_ = rng;
}

void Network::set_faults(const NetFaults& faults, util::RandomStream rng) {
  auto check = [](const char* key, double p) {
    if (!(p >= 0.0) || !(p < 1.0)) {
      throw std::invalid_argument(std::string("Network: fault ") + key +
                                  " probability in [0, 1)");
    }
  };
  check("drop", faults.drop);
  check("duplicate", faults.duplicate);
  check("delay", faults.delay_probability);
  if (faults.delay_probability > 0.0 && !(faults.delay_mean > 0.0)) {
    throw std::invalid_argument("Network: fault delay mean must be positive");
  }
  faults_ = faults;
  fault_rng_ = rng;
}

void Network::send_unreliable(NodeId src, NodeId dst, double size,
                              sim::EventFn on_arrival) {
  if (loss_probability_ > 0.0 && loss_rng_ &&
      loss_rng_->bernoulli(loss_probability_)) {
    ++dropped_;
    return;
  }
  if (faults_.any() && fault_rng_) {
    if (faults_.drop > 0.0 && fault_rng_->bernoulli(faults_.drop)) {
      ++dropped_;
      return;
    }
    double extra = 0.0;
    if (faults_.delay_probability > 0.0 &&
        fault_rng_->bernoulli(faults_.delay_probability)) {
      extra = fault_rng_->exponential(faults_.delay_mean);
      ++delayed_;
    }
    if (faults_.duplicate > 0.0 && fault_rng_->bernoulli(faults_.duplicate)) {
      // The duplicate is a real second message (counted and charged)
      // delivered at the nominal delay; the original may lag behind it.
      ++duplicated_;
      send(src, dst, size, sim::EventFn(on_arrival));
    }
    const double d = predict_delay(src, dst, size) + extra;
    ++messages_;
    bytes_ += size;
    sim().schedule_in(d, std::move(on_arrival));
    return;
  }
  send(src, dst, size, std::move(on_arrival));
}

}  // namespace scal::net
