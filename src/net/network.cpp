#include "net/network.hpp"

#include <stdexcept>

namespace scal::net {

void Network::set_delay_scale(double scale) {
  if (!(scale > 0.0)) {
    throw std::invalid_argument("Network: delay scale must be positive");
  }
  delay_scale_ = scale;
}

double Network::predict_delay(NodeId src, NodeId dst, double size) const {
  if (src == dst) return 0.0;
  return delay_scale_ * router_.delay(src, dst, size);
}

void Network::send(NodeId src, NodeId dst, double size,
                   std::function<void()> on_arrival) {
  const double d = predict_delay(src, dst, size);
  ++messages_;
  bytes_ += size;
  sim().schedule_in(d, std::move(on_arrival));
}

void Network::set_loss(double probability, util::RandomStream rng) {
  if (!(probability >= 0.0) || !(probability < 1.0)) {
    throw std::invalid_argument("Network: loss probability in [0, 1)");
  }
  loss_probability_ = probability;
  loss_rng_ = rng;
}

void Network::send_unreliable(NodeId src, NodeId dst, double size,
                              std::function<void()> on_arrival) {
  if (loss_probability_ > 0.0 && loss_rng_ &&
      loss_rng_->bernoulli(loss_probability_)) {
    ++dropped_;
    return;
  }
  send(src, dst, size, std::move(on_arrival));
}

}  // namespace scal::net
