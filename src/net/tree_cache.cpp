#include "net/tree_cache.hpp"

#include <cstring>
#include <mutex>

#include "util/env.hpp"

namespace scal::net {

namespace {

/// Two independent FNV-1a style lanes (same construction as the config
/// digest in src/grid/digest.cpp, re-stated here because net sits below
/// grid in the layering).
class Mix128 {
 public:
  void word(std::uint64_t w) {
    a_ = (a_ ^ w) * 0x100000001B3ull;
    a_ ^= a_ >> 29;
    b_ = (b_ ^ (w + 0x9E3779B97F4A7C15ull)) * 0xC2B2AE3D27D4EB4Full;
    b_ ^= b_ >> 31;
  }

  void real(double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    word(bits);
  }

  std::array<std::uint64_t, 2> finish() const { return {a_, b_}; }

 private:
  std::uint64_t a_ = 0xCBF29CE484222325ull;
  std::uint64_t b_ = 0x6C62272E07BB0142ull;
};

}  // namespace

std::array<std::uint64_t, 2> graph_digest(const Graph& graph) {
  Mix128 mix;
  const std::size_t n = graph.node_count();
  mix.word(n);
  for (std::size_t u = 0; u < n; ++u) {
    const auto links = graph.neighbors(static_cast<NodeId>(u));
    mix.word(links.size());
    for (const Link& l : links) {
      mix.word(l.to);
      mix.real(l.latency);
      mix.real(l.bandwidth);
    }
  }
  return mix.finish();
}

SharedTreeCache& SharedTreeCache::instance() {
  static SharedTreeCache cache;
  static const bool env_applied = [] {
    const std::int64_t budget = util::env_int("SCAL_TREE_CACHE_BYTES", 0);
    if (budget > 0) cache.set_max_bytes(static_cast<std::size_t>(budget));
    return true;
  }();
  (void)env_applied;
  return cache;
}

std::shared_ptr<const TreeSnapshot> SharedTreeCache::lookup(
    const Key& topology, NodeId src) {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = entries_.find(EntryKey{topology, src});
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shares_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

std::shared_ptr<const TreeSnapshot> SharedTreeCache::publish(
    const Key& topology, NodeId src,
    std::shared_ptr<const TreeSnapshot> snapshot) {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  const EntryKey key{topology, src};
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    // First-publish-wins unless the newcomer is strictly deeper: equal
    // depths keep the canonical first entry (racing publishers of the
    // same settle produce bit-identical snapshots anyway).
    if (snapshot->settled_count <= it->second->settled_count) {
      return it->second;
    }
    bytes_ -= it->second->bytes();
    bytes_ += snapshot->bytes();
    it->second = std::move(snapshot);
    publishes_.fetch_add(1, std::memory_order_relaxed);
    upgrades_.fetch_add(1, std::memory_order_relaxed);
    enforce_budget_locked();
    const auto again = entries_.find(key);
    return again != entries_.end() ? again->second : nullptr;
  }
  const std::size_t cost = snapshot->bytes();
  if (max_bytes_ != 0 && cost > max_bytes_) {
    // Larger than the whole budget: hand the snapshot back unstored.
    return snapshot;
  }
  entries_.emplace(key, snapshot);
  insertion_order_.push_back(key);
  bytes_ += cost;
  publishes_.fetch_add(1, std::memory_order_relaxed);
  enforce_budget_locked();
  const auto again = entries_.find(key);
  return again != entries_.end() ? again->second : snapshot;
}

void SharedTreeCache::enforce_budget_locked() {
  if (max_bytes_ == 0) return;
  while (bytes_ > max_bytes_ && !insertion_order_.empty()) {
    const EntryKey victim = insertion_order_.front();
    insertion_order_.pop_front();
    const auto it = entries_.find(victim);
    if (it == entries_.end()) continue;
    bytes_ -= it->second->bytes();
    entries_.erase(it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SharedTreeCache::set_max_bytes(std::size_t bytes) {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  max_bytes_ = bytes;
  enforce_budget_locked();
}

std::size_t SharedTreeCache::max_bytes() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  return max_bytes_;
}

std::size_t SharedTreeCache::bytes() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  return bytes_;
}

std::uint64_t SharedTreeCache::shares() const {
  return shares_.load(std::memory_order_relaxed);
}
std::uint64_t SharedTreeCache::misses() const {
  return misses_.load(std::memory_order_relaxed);
}
std::uint64_t SharedTreeCache::publishes() const {
  return publishes_.load(std::memory_order_relaxed);
}
std::uint64_t SharedTreeCache::upgrades() const {
  return upgrades_.load(std::memory_order_relaxed);
}
std::uint64_t SharedTreeCache::evictions() const {
  return evictions_.load(std::memory_order_relaxed);
}

std::size_t SharedTreeCache::size() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  return entries_.size();
}

void SharedTreeCache::clear() {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  entries_.clear();
  insertion_order_.clear();
  bytes_ = 0;
  shares_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  publishes_.store(0, std::memory_order_relaxed);
  upgrades_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

}  // namespace scal::net
