#pragma once
// Structural metrics of a topology.  Used by the tests to validate that
// the Mercator-substitute generators produce Internet-like graphs, by
// the topology-sensitivity ablation, and by downstream users sizing
// cluster layouts.

#include <cstddef>

#include "net/graph.hpp"
#include "util/rng.hpp"

namespace scal::net {

struct GraphMetrics {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  double mean_degree = 0.0;
  std::size_t max_degree = 0;
  /// Hop-count diameter estimate (exact if sampled_sources >= nodes).
  std::size_t diameter = 0;
  /// Mean shortest-path hop count over the sampled source set.
  double mean_path_hops = 0.0;
  /// Global clustering coefficient (transitivity): 3 x triangles /
  /// connected triples.
  double clustering = 0.0;
  /// Degree assortativity is expensive; the power-law tail indicator
  /// below is what the Mercator-substitute tests need: fraction of all
  /// edge endpoints owned by the top 10% highest-degree nodes.
  double hub_endpoint_share = 0.0;
};

/// Compute metrics, BFS-sampling `sampled_sources` nodes for the path
/// statistics (all nodes if the graph is small or the budget covers it).
GraphMetrics analyze_graph(const Graph& graph, std::size_t sampled_sources,
                           util::RandomStream& rng);

}  // namespace scal::net
