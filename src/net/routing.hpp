#pragma once
// OSPF-like routing: link-state shortest paths by cumulative link latency
// (Dijkstra), computed per source on demand and cached.  Along the chosen
// path we accumulate both total propagation latency and total inverse
// bandwidth, so an end-to-end message delay is
//     delay = sum(latency) + size * sum(1/bandwidth).

#include <memory>
#include <unordered_map>
#include <vector>

#include "net/graph.hpp"

namespace scal::net {

struct RouteInfo {
  double latency = 0.0;         ///< sum of link latencies on the path
  double inv_bandwidth = 0.0;   ///< sum of 1/bandwidth on the path
  std::uint32_t hops = 0;
  bool reachable = false;
};

class Router {
 public:
  explicit Router(const Graph& graph) : graph_(&graph) {}

  /// Route lookup; computes and caches the source's full shortest-path
  /// tree on first use.
  RouteInfo route(NodeId src, NodeId dst) const;

  /// End-to-end one-way delay for a message of `size` units.
  /// Throws if dst is unreachable.
  double delay(NodeId src, NodeId dst, double size) const;

  /// Shortest path (sequence of nodes, src first); empty if unreachable.
  std::vector<NodeId> path(NodeId src, NodeId dst) const;

  std::size_t cached_sources() const noexcept { return cache_.size(); }
  void clear_cache() const { cache_.clear(); }

 private:
  struct SourceTree {
    std::vector<RouteInfo> info;       // indexed by destination
    std::vector<NodeId> predecessor;   // for path reconstruction
  };
  const SourceTree& tree_for(NodeId src) const;

  const Graph* graph_;
  mutable std::unordered_map<NodeId, std::unique_ptr<SourceTree>> cache_;
};

}  // namespace scal::net
