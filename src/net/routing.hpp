#pragma once
// OSPF-like routing: link-state shortest paths by cumulative link latency
// (Dijkstra), computed per source on demand and cached.  Along the chosen
// path we accumulate both total propagation latency and total inverse
// bandwidth, so an end-to-end message delay is
//     delay = sum(latency) + size * sum(1/bandwidth).

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/graph.hpp"
#include "obs/phase_profiler.hpp"

namespace scal::net {

struct RouteInfo {
  double latency = 0.0;         ///< sum of link latencies on the path
  double inv_bandwidth = 0.0;   ///< sum of 1/bandwidth on the path
  std::uint32_t hops = 0;
  bool reachable = false;
};

/// Immutable snapshot of one source's (possibly partially settled)
/// shortest-path tree: the resumable Dijkstra state at a publication
/// point.  Snapshots are shared read-only across routers via
/// net::SharedTreeCache; a router that needs a deeper settle clones the
/// snapshot into a private tree and extends the copy (copy-on-extend),
/// so readers never observe a mutating frontier.  Every snapshot of one
/// (graph, src) agrees on its settled prefix — Dijkstra finalizes in
/// global distance order — so adopting any of them is route-preserving.
struct TreeSnapshot {
  std::vector<RouteInfo> info;       ///< indexed by destination
  std::vector<NodeId> predecessor;   ///< for path reconstruction
  std::vector<double> dist;
  std::vector<char> settled;
  /// The frontier min-heap's underlying storage (std::*_heap order).
  std::vector<std::pair<double, NodeId>> frontier;
  bool exhausted = false;
  std::size_t settled_count = 0;

  /// Approximate resident payload, for the shared cache's byte budget.
  std::size_t bytes() const noexcept {
    return info.capacity() * sizeof(RouteInfo) +
           predecessor.capacity() * sizeof(NodeId) +
           dist.capacity() * sizeof(double) + settled.capacity() +
           frontier.capacity() * sizeof(std::pair<double, NodeId>);
  }
};

class Router {
 public:
  explicit Router(const Graph& graph) : graph_(&graph) {}

  /// Route lookup; computes and caches the source's full shortest-path
  /// tree on first use.
  RouteInfo route(NodeId src, NodeId dst) const;

  /// End-to-end one-way delay for a message of `size` units.
  /// Throws if dst is unreachable.
  double delay(NodeId src, NodeId dst, double size) const;

  /// Shortest path (sequence of nodes, src first); empty if unreachable.
  std::vector<NodeId> path(NodeId src, NodeId dst) const;

  /// Source trees resident in this router (owned + adopted).
  std::size_t cached_sources() const noexcept { return owned_ + adopted_; }
  /// Trees this router settled (and owns) itself.
  std::size_t owned_sources() const noexcept { return owned_; }
  /// Trees adopted read-only from the shared cache.
  std::size_t shared_sources() const noexcept { return adopted_; }

  /// Drop this router's view of every tree.  Owned trees are freed;
  /// adopted snapshots are *detached* (the shared_ptr is released, the
  /// shared cache and its other readers are never touched).  Sharing
  /// stays enabled, so later queries re-adopt.
  void clear_cache() const {
    cache_.clear();
    shared_.clear();
    owned_ = 0;
    adopted_ = 0;
  }

  /// Opt into the process-wide SharedTreeCache under this topology key
  /// (net::graph_digest of the graph this router serves).  Purely a
  /// wall-clock optimization: adopted snapshots return bit-identical
  /// routes, but profiler `net.route` scope counts drop for queries a
  /// shared tree already answers, so instrumented runs leave it off.
  void enable_tree_sharing(const std::array<std::uint64_t, 2>& key) noexcept {
    sharing_ = true;
    topology_key_ = key;
  }
  bool tree_sharing() const noexcept { return sharing_; }

  /// Attach the (optional) phase profiler: shortest-path settling work
  /// (the incremental Dijkstra) runs inside the given phase.  Warm
  /// queries — the overwhelming majority — pay only the existing
  /// settled test, so instrumentation stays off the hot path.  The
  /// scope count is the number of queries that extended a tree, a pure
  /// function of the query sequence.
  void attach_profiler(obs::PhaseProfiler* profiler,
                       obs::PhaseId route_phase) noexcept {
    profiler_ = profiler;
    route_phase_ = route_phase;
  }

 private:
  struct SourceTree {
    std::vector<RouteInfo> info;       // indexed by destination
    std::vector<NodeId> predecessor;   // for path reconstruction
    // Incremental Dijkstra state.  Most sources only ever query a
    // couple of nearby destinations (a resource talks to its estimator,
    // an estimator to its scheduler), so the search settles nodes lazily
    // — only until the queried destination is final — and resumes from
    // the saved frontier when a later query reaches further.  The
    // settled prefix is identical to what a full run would produce
    // (Dijkstra finalizes in global distance order), so laziness never
    // changes a route.
    std::vector<RouteInfo>::size_type settled_count = 0;
    std::vector<double> dist;
    std::vector<char> settled;
    // Min-heap via std::push_heap/pop_heap with std::greater — the same
    // algorithm priority_queue runs, kept as a plain vector so the
    // state snapshots into a TreeSnapshot with a straight copy.
    std::vector<std::pair<double, NodeId>> frontier;
    bool exhausted = false;
  };
  /// The owned tree for src, creating (or cloning the adopted snapshot
  /// of) it on first need.
  SourceTree& tree_for(NodeId src) const;
  /// Run the tree's Dijkstra until `dst` is settled (or the frontier
  /// empties, proving unreachability); publishes the deeper state when
  /// sharing is on.
  void settle(NodeId src, SourceTree& tree, NodeId dst) const;
  /// The adopted snapshot that can answer (src, dst), or null (also
  /// null when an owned tree exists — owned state is always at least
  /// as deep).  Attempts adoption from the shared cache on first touch.
  const TreeSnapshot* adopted_for(NodeId src, NodeId dst) const;
  /// Copy the tree's current state into the shared cache.
  void publish_snapshot(NodeId src, const SourceTree& tree) const;
  void ensure_slots() const;

  const Graph* graph_;
  // Flat per-source cache indexed by node id: the schedulers query the
  // same (src, dst) pairs every update interval, so the hot path is a
  // null test + two vector indexes instead of a hash lookup.
  mutable std::vector<std::unique_ptr<SourceTree>> cache_;
  // Adopted read-only snapshots, same indexing.  A source has an owned
  // tree, an adopted snapshot, or neither — never both (cloning into an
  // owned tree releases the adopted slot).
  mutable std::vector<std::shared_ptr<const TreeSnapshot>> shared_;
  mutable std::size_t owned_ = 0;
  mutable std::size_t adopted_ = 0;
  bool sharing_ = false;
  std::array<std::uint64_t, 2> topology_key_{};
  obs::PhaseProfiler* profiler_ = nullptr;
  obs::PhaseId route_phase_ = 0;
};

}  // namespace scal::net
