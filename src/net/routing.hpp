#pragma once
// OSPF-like routing: link-state shortest paths by cumulative link latency
// (Dijkstra), computed per source on demand and cached.  Along the chosen
// path we accumulate both total propagation latency and total inverse
// bandwidth, so an end-to-end message delay is
//     delay = sum(latency) + size * sum(1/bandwidth).

#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "net/graph.hpp"
#include "obs/phase_profiler.hpp"

namespace scal::net {

struct RouteInfo {
  double latency = 0.0;         ///< sum of link latencies on the path
  double inv_bandwidth = 0.0;   ///< sum of 1/bandwidth on the path
  std::uint32_t hops = 0;
  bool reachable = false;
};

class Router {
 public:
  explicit Router(const Graph& graph) : graph_(&graph) {}

  /// Route lookup; computes and caches the source's full shortest-path
  /// tree on first use.
  RouteInfo route(NodeId src, NodeId dst) const;

  /// End-to-end one-way delay for a message of `size` units.
  /// Throws if dst is unreachable.
  double delay(NodeId src, NodeId dst, double size) const;

  /// Shortest path (sequence of nodes, src first); empty if unreachable.
  std::vector<NodeId> path(NodeId src, NodeId dst) const;

  std::size_t cached_sources() const noexcept { return cached_; }
  void clear_cache() const {
    cache_.clear();
    cached_ = 0;
  }

  /// Attach the (optional) phase profiler: shortest-path settling work
  /// (the incremental Dijkstra) runs inside the given phase.  Warm
  /// queries — the overwhelming majority — pay only the existing
  /// settled test, so instrumentation stays off the hot path.  The
  /// scope count is the number of queries that extended a tree, a pure
  /// function of the query sequence.
  void attach_profiler(obs::PhaseProfiler* profiler,
                       obs::PhaseId route_phase) noexcept {
    profiler_ = profiler;
    route_phase_ = route_phase;
  }

 private:
  struct SourceTree {
    std::vector<RouteInfo> info;       // indexed by destination
    std::vector<NodeId> predecessor;   // for path reconstruction
    // Incremental Dijkstra state.  Most sources only ever query a
    // couple of nearby destinations (a resource talks to its estimator,
    // an estimator to its scheduler), so the search settles nodes lazily
    // — only until the queried destination is final — and resumes from
    // the saved frontier when a later query reaches further.  The
    // settled prefix is identical to what a full run would produce
    // (Dijkstra finalizes in global distance order), so laziness never
    // changes a route.
    std::vector<double> dist;
    std::vector<char> settled;
    std::priority_queue<std::pair<double, NodeId>,
                        std::vector<std::pair<double, NodeId>>,
                        std::greater<>>
        frontier;
    bool exhausted = false;
  };
  SourceTree& tree_for(NodeId src) const;
  /// Run the tree's Dijkstra until `dst` is settled (or the frontier
  /// empties, proving unreachability).
  void settle(SourceTree& tree, NodeId dst) const;

  const Graph* graph_;
  // Flat per-source cache indexed by node id: the schedulers query the
  // same (src, dst) pairs every update interval, so the hot path is a
  // null test + two vector indexes instead of a hash lookup.
  mutable std::vector<std::unique_ptr<SourceTree>> cache_;
  mutable std::size_t cached_ = 0;
  obs::PhaseProfiler* profiler_ = nullptr;
  obs::PhaseId route_phase_ = 0;
};

}  // namespace scal::net
