#include "net/routing.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace scal::net {

const Router::SourceTree& Router::tree_for(NodeId src) const {
  if (src >= graph_->node_count()) {
    throw std::out_of_range("Router: source out of range");
  }
  if (const auto it = cache_.find(src); it != cache_.end()) {
    return *it->second;
  }

  const std::size_t n = graph_->node_count();
  auto tree = std::make_unique<SourceTree>();
  tree->info.assign(n, RouteInfo{});
  tree->predecessor.assign(n, kInvalidNode);
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());

  using QEntry = std::pair<double, NodeId>;  // (distance, node)
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> pq;
  dist[src] = 0.0;
  tree->info[src].reachable = true;
  pq.emplace(0.0, src);

  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;  // stale entry
    for (const Link& l : graph_->neighbors(u)) {
      const double nd = d + l.latency;
      // Strict improvement keeps the tree deterministic given adjacency
      // order (ties resolve to the first-relaxed predecessor).
      if (nd < dist[l.to]) {
        dist[l.to] = nd;
        auto& info = tree->info[l.to];
        info.reachable = true;
        info.latency = tree->info[u].latency + l.latency;
        info.inv_bandwidth = tree->info[u].inv_bandwidth + 1.0 / l.bandwidth;
        info.hops = tree->info[u].hops + 1;
        tree->predecessor[l.to] = u;
        pq.emplace(nd, l.to);
      }
    }
  }

  auto [it, inserted] = cache_.emplace(src, std::move(tree));
  (void)inserted;
  return *it->second;
}

RouteInfo Router::route(NodeId src, NodeId dst) const {
  if (dst >= graph_->node_count()) {
    throw std::out_of_range("Router: destination out of range");
  }
  return tree_for(src).info[dst];
}

double Router::delay(NodeId src, NodeId dst, double size) const {
  if (src == dst) return 0.0;
  const RouteInfo info = route(src, dst);
  if (!info.reachable) {
    throw std::runtime_error("Router::delay: destination unreachable");
  }
  return info.latency + size * info.inv_bandwidth;
}

std::vector<NodeId> Router::path(NodeId src, NodeId dst) const {
  if (dst >= graph_->node_count()) {
    throw std::out_of_range("Router: destination out of range");
  }
  const auto& tree = tree_for(src);
  if (!tree.info[dst].reachable) return {};
  std::vector<NodeId> p;
  for (NodeId n = dst; n != kInvalidNode; n = tree.predecessor[n]) {
    p.push_back(n);
    if (n == src) break;
  }
  std::reverse(p.begin(), p.end());
  return p;
}

}  // namespace scal::net
