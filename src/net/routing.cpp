#include "net/routing.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <stdexcept>

#include "net/tree_cache.hpp"

namespace scal::net {

void Router::ensure_slots() const {
  const std::size_t n = graph_->node_count();
  if (cache_.size() != n) cache_.resize(n);
  if (sharing_ && shared_.size() != n) shared_.resize(n);
}

const TreeSnapshot* Router::adopted_for(NodeId src, NodeId dst) const {
  if (src >= graph_->node_count()) {
    throw std::out_of_range("Router: source out of range");
  }
  if (cache_[src] != nullptr) return nullptr;  // owned state is deeper
  if (shared_[src] == nullptr) {
    auto snapshot = SharedTreeCache::instance().lookup(topology_key_, src);
    if (snapshot == nullptr) return nullptr;
    shared_[src] = std::move(snapshot);
    ++adopted_;
  }
  const TreeSnapshot* snapshot = shared_[src].get();
  if (snapshot->settled[dst] != 0 || snapshot->exhausted) return snapshot;
  return nullptr;  // too shallow for dst: caller clones and extends
}

Router::SourceTree& Router::tree_for(NodeId src) const {
  const std::size_t n = graph_->node_count();
  if (src >= n) {
    throw std::out_of_range("Router: source out of range");
  }
  if (const auto& slot = cache_[src]) return *slot;

  auto tree = std::make_unique<SourceTree>();
  if (sharing_ && shared_[src] != nullptr) {
    // Copy-on-extend: resume from the adopted snapshot's frontier in a
    // private copy; the shared state is never mutated.
    const TreeSnapshot& snapshot = *shared_[src];
    tree->info = snapshot.info;
    tree->predecessor = snapshot.predecessor;
    tree->dist = snapshot.dist;
    tree->settled = snapshot.settled;
    tree->frontier = snapshot.frontier;
    tree->exhausted = snapshot.exhausted;
    tree->settled_count = snapshot.settled_count;
    shared_[src] = nullptr;
    --adopted_;
  } else {
    tree->info.assign(n, RouteInfo{});
    tree->predecessor.assign(n, kInvalidNode);
    tree->dist.assign(n, std::numeric_limits<double>::infinity());
    tree->settled.assign(n, 0);
    tree->dist[src] = 0.0;
    tree->info[src].reachable = true;
    tree->frontier.emplace_back(0.0, src);
  }

  cache_[src] = std::move(tree);
  ++owned_;
  return *cache_[src];
}

void Router::publish_snapshot(NodeId src, const SourceTree& tree) const {
  auto snapshot = std::make_shared<TreeSnapshot>();
  snapshot->info = tree.info;
  snapshot->predecessor = tree.predecessor;
  snapshot->dist = tree.dist;
  snapshot->settled = tree.settled;
  snapshot->frontier = tree.frontier;
  snapshot->exhausted = tree.exhausted;
  snapshot->settled_count = tree.settled_count;
  SharedTreeCache::instance().publish(topology_key_, src,
                                      std::move(snapshot));
}

void Router::settle(NodeId src, SourceTree& tree, NodeId dst) const {
  if (tree.settled[dst] != 0 || tree.exhausted) return;
  obs::PhaseProfiler::Scope scope(profiler_, route_phase_);
  // Min-heap over the frontier vector; pop/push order is identical to
  // the std::priority_queue this state used to live in.
  auto& heap = tree.frontier;
  const std::greater<> cmp;
  bool settled_dst = false;
  while (!heap.empty()) {
    const auto [d, u] = heap.front();
    std::pop_heap(heap.begin(), heap.end(), cmp);
    heap.pop_back();
    if (d > tree.dist[u]) continue;  // stale entry
    tree.settled[u] = 1;
    ++tree.settled_count;
    for (const Link& l : graph_->neighbors(u)) {
      const double nd = d + l.latency;
      // Strict improvement keeps the tree deterministic given adjacency
      // order (ties resolve to the first-relaxed predecessor).
      if (nd < tree.dist[l.to]) {
        tree.dist[l.to] = nd;
        auto& info = tree.info[l.to];
        info.reachable = true;
        info.latency = tree.info[u].latency + l.latency;
        info.inv_bandwidth = tree.info[u].inv_bandwidth + 1.0 / l.bandwidth;
        info.hops = tree.info[u].hops + 1;
        tree.predecessor[l.to] = u;
        heap.emplace_back(nd, l.to);
        std::push_heap(heap.begin(), heap.end(), cmp);
      }
    }
    if (u == dst) {
      settled_dst = true;
      break;
    }
  }
  if (!settled_dst) tree.exhausted = true;
  // Publish the deeper state so sibling routers adopt instead of
  // re-settling.  Per extension event (rare), not per query.
  if (sharing_) publish_snapshot(src, tree);
}

RouteInfo Router::route(NodeId src, NodeId dst) const {
  if (dst >= graph_->node_count()) {
    throw std::out_of_range("Router: destination out of range");
  }
  ensure_slots();
  if (sharing_) {
    if (const TreeSnapshot* snapshot = adopted_for(src, dst)) {
      return snapshot->info[dst];
    }
  }
  SourceTree& tree = tree_for(src);
  settle(src, tree, dst);
  return tree.info[dst];
}

double Router::delay(NodeId src, NodeId dst, double size) const {
  if (src == dst) return 0.0;
  if (dst >= graph_->node_count()) {
    throw std::out_of_range("Router: destination out of range");
  }
  ensure_slots();
  const RouteInfo* info = nullptr;
  if (sharing_) {
    if (const TreeSnapshot* snapshot = adopted_for(src, dst)) {
      info = &snapshot->info[dst];
    }
  }
  if (info == nullptr) {
    SourceTree& tree = tree_for(src);
    if (tree.settled[dst] == 0) settle(src, tree, dst);
    info = &tree.info[dst];
  }
  if (!info->reachable) {
    throw std::runtime_error("Router::delay: destination unreachable");
  }
  return info->latency + size * info->inv_bandwidth;
}

std::vector<NodeId> Router::path(NodeId src, NodeId dst) const {
  if (dst >= graph_->node_count()) {
    throw std::out_of_range("Router: destination out of range");
  }
  ensure_slots();
  const std::vector<NodeId>* predecessor = nullptr;
  const std::vector<RouteInfo>* info = nullptr;
  if (sharing_) {
    if (const TreeSnapshot* snapshot = adopted_for(src, dst)) {
      predecessor = &snapshot->predecessor;
      info = &snapshot->info;
    }
  }
  if (predecessor == nullptr) {
    SourceTree& tree = tree_for(src);
    settle(src, tree, dst);
    predecessor = &tree.predecessor;
    info = &tree.info;
  }
  if (!(*info)[dst].reachable) return {};
  std::vector<NodeId> p;
  for (NodeId n = dst; n != kInvalidNode; n = (*predecessor)[n]) {
    p.push_back(n);
    if (n == src) break;
  }
  std::reverse(p.begin(), p.end());
  return p;
}

}  // namespace scal::net
