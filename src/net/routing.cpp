#include "net/routing.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace scal::net {

Router::SourceTree& Router::tree_for(NodeId src) const {
  const std::size_t n = graph_->node_count();
  if (src >= n) {
    throw std::out_of_range("Router: source out of range");
  }
  if (cache_.size() != n) cache_.resize(n);
  if (const auto& slot = cache_[src]) return *slot;

  auto tree = std::make_unique<SourceTree>();
  tree->info.assign(n, RouteInfo{});
  tree->predecessor.assign(n, kInvalidNode);
  tree->dist.assign(n, std::numeric_limits<double>::infinity());
  tree->settled.assign(n, 0);
  tree->dist[src] = 0.0;
  tree->info[src].reachable = true;
  tree->frontier.emplace(0.0, src);

  cache_[src] = std::move(tree);
  ++cached_;
  return *cache_[src];
}

void Router::settle(SourceTree& tree, NodeId dst) const {
  if (tree.settled[dst] != 0 || tree.exhausted) return;
  obs::PhaseProfiler::Scope scope(profiler_, route_phase_);
  auto& pq = tree.frontier;
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > tree.dist[u]) continue;  // stale entry
    tree.settled[u] = 1;
    for (const Link& l : graph_->neighbors(u)) {
      const double nd = d + l.latency;
      // Strict improvement keeps the tree deterministic given adjacency
      // order (ties resolve to the first-relaxed predecessor).
      if (nd < tree.dist[l.to]) {
        tree.dist[l.to] = nd;
        auto& info = tree.info[l.to];
        info.reachable = true;
        info.latency = tree.info[u].latency + l.latency;
        info.inv_bandwidth = tree.info[u].inv_bandwidth + 1.0 / l.bandwidth;
        info.hops = tree.info[u].hops + 1;
        tree.predecessor[l.to] = u;
        pq.emplace(nd, l.to);
      }
    }
    if (u == dst) return;
  }
  tree.exhausted = true;
}

RouteInfo Router::route(NodeId src, NodeId dst) const {
  if (dst >= graph_->node_count()) {
    throw std::out_of_range("Router: destination out of range");
  }
  SourceTree& tree = tree_for(src);
  settle(tree, dst);
  return tree.info[dst];
}

double Router::delay(NodeId src, NodeId dst, double size) const {
  if (src == dst) return 0.0;
  if (dst >= graph_->node_count()) {
    throw std::out_of_range("Router: destination out of range");
  }
  SourceTree& tree = tree_for(src);
  if (tree.settled[dst] == 0) settle(tree, dst);
  const RouteInfo& info = tree.info[dst];
  if (!info.reachable) {
    throw std::runtime_error("Router::delay: destination unreachable");
  }
  return info.latency + size * info.inv_bandwidth;
}

std::vector<NodeId> Router::path(NodeId src, NodeId dst) const {
  if (dst >= graph_->node_count()) {
    throw std::out_of_range("Router: destination out of range");
  }
  SourceTree& tree = tree_for(src);
  settle(tree, dst);
  if (!tree.info[dst].reachable) return {};
  std::vector<NodeId> p;
  for (NodeId n = dst; n != kInvalidNode; n = tree.predecessor[n]) {
    p.push_back(n);
    if (n == src) break;
  }
  std::reverse(p.begin(), p.end());
  return p;
}

}  // namespace scal::net
