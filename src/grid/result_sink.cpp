#include "grid/result_sink.hpp"

#include <memory>
#include <stdexcept>

namespace scal::grid {

std::string to_string(ResultMode mode) {
  switch (mode) {
    case ResultMode::kFull: return "full";
    case ResultMode::kStreaming: return "streaming";
  }
  return "?";
}

ResultMode result_mode_from_string(const std::string& name) {
  if (name == "full") return ResultMode::kFull;
  if (name == "streaming") return ResultMode::kStreaming;
  throw std::invalid_argument("result_mode_from_string: unknown mode '" +
                              name + "' (expected full|streaming)");
}

void FullResultSink::merge_responses(const ResultSink& other) {
  const util::Samples* theirs = other.samples();
  if (theirs == nullptr) {
    throw std::logic_error(
        "FullResultSink::merge_responses: cannot merge a streaming sink "
        "into a full one");
  }
  for (const double r : theirs->values()) response_.add(r);
}

void StreamingResultSink::merge_responses(const ResultSink& other) {
  const auto* theirs = dynamic_cast<const StreamingResultSink*>(&other);
  if (theirs == nullptr) {
    throw std::logic_error(
        "StreamingResultSink::merge_responses: cannot merge a full sink "
        "into a streaming one");
  }
  count_ += theirs->count_;
  sum_ += theirs->sum_;
  hist_.merge(theirs->hist_);
}

std::unique_ptr<ResultSink> make_result_sink(ResultMode mode) {
  if (mode == ResultMode::kStreaming) {
    return std::make_unique<StreamingResultSink>();
  }
  return std::make_unique<FullResultSink>();
}

}  // namespace scal::grid
