#pragma once
// ResultSink — the result half of the streaming tier's API split.
//
// MetricsCollector used to play two roles: fold the F/G/H counters AND
// own the per-job result storage (the exact response-time samples, the
// lifecycle log).  The counters are O(1) already; the storage is what
// capped runs at ~10^6 jobs.  A ResultSink isolates that storage choice
// behind an interface selected by GridConfig::result_mode:
//
//   FullResultSink      — util::Samples + unbounded JobLog.  Exact
//                         percentiles; byte-identical to the legacy
//                         collector.  O(jobs) memory.
//   StreamingResultSink — running sum/count (the mean is bitwise
//                         identical to Samples::mean, which sums in the
//                         same insertion order) + an HDR histogram for
//                         percentiles (<= one sub-bucket of relative
//                         error) + a capacity-bounded JobLog.  O(1)
//                         memory per job.
//
// Every sink owns a JobLog so lifecycle events always have one
// destination; policies and components record through
// MetricsCollector::record_job_event instead of mutating job_log()
// directly.

#include <cstdint>
#include <memory>

#include "grid/joblog.hpp"
#include "grid/result_mode.hpp"
#include "obs/histogram.hpp"
#include "util/stats.hpp"

namespace scal::grid {

class ResultSink {
 public:
  virtual ~ResultSink() = default;

  JobLog& log() noexcept { return log_; }
  const JobLog& log() const noexcept { return log_; }

  virtual ResultMode mode() const noexcept = 0;

  /// Fold one completed job's response time.
  virtual void record_response(double response) = 0;
  virtual std::uint64_t response_count() const noexcept = 0;
  virtual double response_mean() const = 0;
  virtual double response_p95() const = 0;

  /// The exact sample store, or null when the sink folds online.
  virtual const util::Samples* samples() const noexcept { return nullptr; }

  /// Fold another sink's responses into this one (deterministic shard
  /// reduction).  Both sinks must be the same mode; throws
  /// std::logic_error otherwise.
  virtual void merge_responses(const ResultSink& other) = 0;

  /// Drop the folded responses; the job log is left untouched (the
  /// reset path clears it separately).
  virtual void clear_responses() = 0;

 private:
  JobLog log_;
};

class FullResultSink final : public ResultSink {
 public:
  ResultMode mode() const noexcept override { return ResultMode::kFull; }
  void record_response(double response) override { response_.add(response); }
  std::uint64_t response_count() const noexcept override {
    return response_.count();
  }
  double response_mean() const override { return response_.mean(); }
  double response_p95() const override { return response_.percentile(95.0); }
  const util::Samples* samples() const noexcept override { return &response_; }
  void merge_responses(const ResultSink& other) override;
  void clear_responses() override { response_ = util::Samples{}; }

 private:
  util::Samples response_;
};

class StreamingResultSink final : public ResultSink {
 public:
  ResultMode mode() const noexcept override { return ResultMode::kStreaming; }
  void record_response(double response) override {
    // Identical op sequence to Samples::mean()'s fold (0.0-seeded sum in
    // completion order), so response_mean() is bitwise identical to the
    // full sink's.
    ++count_;
    sum_ += response;
    hist_.record(response);
  }
  std::uint64_t response_count() const noexcept override { return count_; }
  double response_mean() const override {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  /// Approximate: HDR-histogram percentile (fixed memory, <= one
  /// sub-bucket of relative error) — exact streaming percentiles would
  /// need O(jobs) state.
  double response_p95() const override {
    return count_ > 0 ? hist_.percentile(95.0) : 0.0;
  }
  void merge_responses(const ResultSink& other) override;
  void clear_responses() override {
    count_ = 0;
    sum_ = 0.0;
    hist_.clear();
  }

  const obs::Histogram& response_histogram() const noexcept { return hist_; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  obs::Histogram hist_;
};

/// Build the sink matching `mode`.
std::unique_ptr<ResultSink> make_result_sink(ResultMode mode);

}  // namespace scal::grid
