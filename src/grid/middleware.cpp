#include "grid/middleware.hpp"

// Middleware is header-only today; this TU anchors the vtable.

namespace scal::grid {}
