#include "grid/estimator.hpp"

#include <stdexcept>

namespace scal::grid {

Estimator::Estimator(sim::Simulator& sim, sim::EntityId id, ClusterId cluster,
                     std::uint32_t index, double process_cost,
                     double forward_cost, double batch_window,
                     std::function<void(StatusBatch)> forward)
    : Server(sim, id, "estimator"), cluster_(cluster), index_(index),
      process_cost_(process_cost), forward_cost_(forward_cost),
      batch_window_(batch_window), forward_(std::move(forward)) {
  if (!(process_cost_ >= 0.0) || !(forward_cost_ >= 0.0) ||
      !(batch_window_ >= 0.0)) {
    throw std::invalid_argument("Estimator: negative costs");
  }
}

void Estimator::receive_update(StatusUpdate update) {
  ++updates_;
  submit(process_cost_, [this, update]() mutable {
    obs::PhaseProfiler::Scope scope(profiler_, update_phase_);
    integrate(update);
  });
}

void Estimator::receive_bundle(std::vector<StatusUpdate> updates) {
  if (updates.empty()) return;
  updates_ += updates.size();
  submit(process_cost_ * static_cast<double>(updates.size()),
         [this, ups = std::move(updates)]() mutable {
           obs::PhaseProfiler::Scope scope(profiler_, update_phase_);
           for (StatusUpdate& u : ups) integrate(u);
         });
}

void Estimator::integrate(StatusUpdate update) {
  if (update.resource >= last_load_.size()) {
    last_load_.resize(update.resource + 1, -1.0);
  }
  const double prev = last_load_[update.resource];
  // A recovery report is a state reset, not a transition: the resource
  // may have crashed while busy, and flagging its fresh zero-load
  // report as an idle transition would fire phantom idle-event
  // triggers (AUCTION invitations, Sy-I adverts) for capacity that
  // never actually drained a job.
  update.idle_transition =
      !update.recovered && prev > 0.5 && update.load < 0.5;
  last_load_[update.resource] = update.load;
  buffer_.push_back(update);
  if (!flush_scheduled_) {
    flush_scheduled_ = true;
    sim().schedule_in(batch_window_, [this]() { flush(); });
  }
}

void Estimator::flush() {
  flush_scheduled_ = false;
  if (buffer_.empty()) return;
  submit(forward_cost_, [this]() {
    if (buffer_.empty()) return;
    StatusBatch batch;
    batch.cluster = cluster_;
    batch.estimator = index_;
    batch.updates.swap(buffer_);
    ++batches_;
    forward_(std::move(batch));
  });
}

void Estimator::reset() {
  reset_server();
  buffer_.clear();
  last_load_.clear();
  flush_scheduled_ = false;
  updates_ = 0;
  batches_ = 0;
}

}  // namespace scal::grid
