#pragma once
// Optional job-lifecycle event log.  When GridConfig::job_log is set,
// every job's arrival, transfers, dispatch, service start, and
// completion are recorded with timestamps, enabling post-run analysis
// of where response time goes (placement latency vs queueing vs
// service) — per job or in aggregate.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"
#include "util/stats.hpp"
#include "workload/job.hpp"

namespace scal::grid {

enum class JobEvent : std::uint8_t {
  kArrival,   ///< submitted at its origin cluster
  kTransfer,  ///< handed to another scheduler (kJobTransfer on the wire)
  kDispatch,  ///< shipped to a concrete resource
  kStart,     ///< service begins on the resource
  kComplete,  ///< service done (success or miss decided elsewhere)
  kKilled,    ///< destroyed by a resource crash (fault injection)
};

const char* to_string(JobEvent event);

struct JobLogRecord {
  workload::JobId job = 0;
  JobEvent event = JobEvent::kArrival;
  sim::Time at = 0.0;
  std::uint32_t place = 0;  ///< cluster (arrival/transfer/dispatch) or
                            ///< resource index (start/complete)
};

class JobLog {
 public:
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  bool enabled() const noexcept { return enabled_; }

  /// Bound the log at `capacity` records (0 = unbounded, the default).
  /// Records past the cap are counted in dropped() instead of stored —
  /// the streaming tier's "first N records, then count" discipline.
  void set_capacity(std::size_t capacity) noexcept { capacity_ = capacity; }
  std::size_t capacity() const noexcept { return capacity_; }
  /// Records discarded by the capacity bound.
  std::uint64_t dropped() const noexcept { return dropped_; }

  void record(workload::JobId job, JobEvent event, sim::Time at,
              std::uint32_t place = 0);

  /// Drop all records (reusable-system path); enablement and capacity
  /// are unchanged.
  void clear() {
    records_.clear();
    by_job_.clear();
    dropped_ = 0;
  }

  std::size_t size() const noexcept { return records_.size(); }
  const std::vector<JobLogRecord>& records() const noexcept {
    return records_;
  }

  /// All records of one job, in time order (they are appended in time
  /// order already, since the simulation clock is monotone).
  std::vector<JobLogRecord> timeline(workload::JobId job) const;

  /// Count of records with this event type.
  std::size_t count(JobEvent event) const;

  /// Per-job delay between the first `from` and the first `to` event;
  /// jobs missing either event are skipped.
  util::Samples delays(JobEvent from, JobEvent to) const;

  /// Number of kTransfer hops for one job.
  std::size_t transfer_hops(workload::JobId job) const;

 private:
  bool enabled_ = false;
  std::size_t capacity_ = 0;  // 0 = unbounded
  std::uint64_t dropped_ = 0;
  std::vector<JobLogRecord> records_;
  // job -> indices into records_, for O(1) timeline lookup.
  std::unordered_map<workload::JobId, std::vector<std::size_t>> by_job_;
};

}  // namespace scal::grid
