#pragma once
// Grid middleware for the superscheduler models (S-I, R-I, Sy-I), per the
// paper: "we ... model the Grid middleware using a simple queue with
// infinite capacity and finite but small service time".  Every
// inter-scheduler message of those models is relayed through this single
// queue; its offered work is part of G(k).

#include "sim/event_queue.hpp"
#include "sim/server.hpp"

namespace scal::grid {

class Middleware : public sim::Server {
 public:
  Middleware(sim::Simulator& sim, sim::EntityId id, double service_time)
      : Server(sim, id, "middleware"), service_time_(service_time) {}

  /// Relay: after the queue's service time, `deliver` performs the
  /// second network hop to the destination scheduler.
  void relay(sim::EventFn deliver) {
    submit(service_time_, std::move(deliver));
  }

  double service_time() const noexcept { return service_time_; }

 private:
  double service_time_;
};

}  // namespace scal::grid
