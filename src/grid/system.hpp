#pragma once
// GridSystem: builds and runs one managed-grid simulation.
//
// Construction wires everything together: topology generation (Mercator
// substitute), cluster partitioning, resources/estimators/schedulers/
// middleware placement, OSPF-like routing, and the workload stream.
// run() executes to the horizon and assembles the SimulationResult whose
// F, G, and H terms feed the scalability framework.

#include <memory>
#include <vector>

#include "ctrl/aggregator.hpp"
#include "ctrl/tree.hpp"
#include "fault/injector.hpp"
#include "grid/cluster.hpp"
#include "grid/config.hpp"
#include "grid/estimator.hpp"
#include "grid/metrics.hpp"
#include "grid/middleware.hpp"
#include "grid/resource.hpp"
#include "grid/result_sink.hpp"
#include "grid/scheduler.hpp"
#include "net/network.hpp"
#include "obs/telemetry.hpp"
#include "sim/simulator.hpp"
#include "workload/arena.hpp"
#include "workload/generator.hpp"
#include "workload/stream.hpp"
#include "workload/trace.hpp"

namespace scal::grid {

class StateSampler;

/// Creates the policy scheduler for one cluster (or the single central
/// scheduler).  Lives in the rms library (scal::rms::scheduler_factory);
/// injected here so grid does not depend on the policies.
using SchedulerFactory = std::function<std::unique_ptr<SchedulerBase>(
    GridSystem&, sim::EntityId, ClusterId, net::NodeId)>;

class GridSystem {
 public:
  /// Validates config, builds the full system.  Deterministic in
  /// (config, config.seed).
  GridSystem(GridConfig config, SchedulerFactory factory);
  ~GridSystem();

  GridSystem(const GridSystem&) = delete;
  GridSystem& operator=(const GridSystem&) = delete;

  /// Run the simulation to config.horizon and collect the result.
  /// Callable once per build/reset cycle.
  SimulationResult run();

  /// True when `next` differs from the built config only in fields the
  /// reset path re-applies (the tuning enablers, the service rate, and
  /// the workload's mean interarrival) and telemetry is off on both
  /// sides — i.e. reset(next) followed by run() is bit-identical to
  /// constructing a fresh GridSystem(next) and running it.
  bool reset_compatible(const GridConfig& next) const;

  /// Rewind the built system to its pre-run state under `next`'s tuning,
  /// reusing the topology, warm routing trees, cluster layout, entity
  /// graph, and the generated workload — the reusable-simulation-state
  /// path the enabler tuner leans on.  Throws std::logic_error when
  /// !reset_compatible(next).
  void reset(const GridConfig& next);

  // -- Accessors used by the scheduler policies.
  sim::Simulator& simulator() noexcept { return sim_; }
  net::Network& network() noexcept { return *network_; }
  const GridConfig& config() const noexcept { return config_; }
  MetricsCollector& metrics() noexcept { return metrics_; }
  const ClusterLayout& layout() const noexcept { return layout_; }

  std::size_t cluster_count() const noexcept { return layout_.clusters.size(); }
  std::size_t resource_count(ClusterId cluster) const {
    return layout_.clusters.at(cluster).resource_nodes.size();
  }

  Resource& resource(ClusterId cluster, ResourceIndex index);
  /// The scheduler responsible for `cluster` (the single central
  /// scheduler when the policy is CENTRAL).
  SchedulerBase& scheduler_for(ClusterId cluster);
  Middleware& middleware() noexcept { return *middleware_; }
  net::NodeId middleware_node() const noexcept { return middleware_node_; }

  /// Mean service time of one job at the configured rate — the
  /// schedulers' waiting-time unit.
  double mean_service_time() const noexcept { return mean_service_time_; }

  /// Deliver an RmsMessage to its destination scheduler, paying network
  /// (and optionally middleware) delays.  Used by SchedulerBase.
  void route_message(net::NodeId from_node, RmsMessage msg,
                     bool via_middleware);

  /// Job-lifecycle log (empty unless config.job_log was set).
  const JobLog& job_log() const noexcept { return sink_->log(); }

  /// The active result sink (full or streaming, per config.result_mode).
  const ResultSink& result_sink() const noexcept { return *sink_; }

  /// Time-series sampler (null unless config.sample_interval > 0).
  const StateSampler* sampler() const noexcept { return sampler_.get(); }

  /// Run telemetry handle (null unless config.telemetry was set).
  obs::Telemetry* telemetry() noexcept { return config_.telemetry; }

  /// Ship a job to a resource (network hop), then enqueue it there.
  void ship_job_to_resource(net::NodeId from_node, ClusterId cluster,
                            ResourceIndex index, workload::Job job);

  std::uint64_t seed() const noexcept { return config_.seed; }

  /// True when status updates are currently flowing through the
  /// aggregation trees (control plane on AND the knobs are off the
  /// degenerate bypass point).  Re-evaluated by every reset cycle.
  bool control_plane_active() const noexcept { return ctrl_active_; }

 private:
  void build();
  void schedule_arrivals();
  SimulationResult assemble_result();
  /// Build the aggregation forest (one tree per (cluster, estimator));
  /// only called when config.control_plane — otherwise no aggregator
  /// entities exist and the report path compiles down to the legacy
  /// point-to-point sends.
  void setup_control_plane();
  /// (Re)apply the agg_* tuning knobs: rewire parents for the current
  /// fan-out, push batch/flush into every aggregator, and refresh the
  /// bypass flag.  Runs at build and on every reset.
  void configure_control_plane();
  /// Ship a finished batch one hop up tree (cluster, estimator) from
  /// member `member` (to its parent aggregator, or to the estimator
  /// when the member is a root child).  Looks the parent up at call
  /// time so reset-cycle rewires take effect without re-wiring
  /// callbacks.
  void forward_up(ClusterId cluster, std::size_t estimator,
                  std::uint32_t member, std::vector<StatusUpdate> updates);
  /// Wire the fault layer: injector hooks, net message faults, kill
  /// handlers, and the schedulers' robustness mixin.  Only called when
  /// config.faults.any() — a fault-free run constructs none of it.
  void setup_faults();

  // -- Telemetry plumbing (all no-ops when config_.telemetry is null).
  void setup_telemetry();
  void probe_tick();
  /// Fill the state fields of a probe sample (busy fractions, backlogs,
  /// windowed utilizations) at the current sim time.
  void fill_probe_state(obs::ProbeSample& sample);
  /// Current cumulative G across all RMS servers (valid mid-run).
  double current_overhead_work() const;
  void finish_telemetry(const SimulationResult& result);

  /// Deliver one pulled/materialized arrival into the system: metrics,
  /// optional job trace, and the CENTRAL gateway forward.  Shared by the
  /// materialized and streaming arrival paths so both are bit-identical.
  void deliver_arrival(const workload::Job& job);
  /// Streaming path: schedule the next pulled arrival (chained — each
  /// arrival event schedules its successor, so at most one job is ever
  /// pending in the event queue).
  void schedule_next_arrival();

  GridConfig config_;
  sim::Simulator sim_;
  net::Graph graph_;
  ClusterLayout layout_;
  MetricsCollector metrics_;
  /// Owns the response accumulator and the job log; selected once at
  /// build time from config.result_mode (structural — reset keeps it).
  std::unique_ptr<ResultSink> sink_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<Middleware> middleware_;
  net::NodeId middleware_node_ = net::kInvalidNode;
  // resources_[cluster][index]
  std::vector<std::vector<std::unique_ptr<Resource>>> resources_;
  std::vector<std::vector<std::unique_ptr<Estimator>>> estimators_;
  std::vector<std::unique_ptr<SchedulerBase>> schedulers_;
  /// One aggregation tree per (cluster, estimator) pair; empty unless
  /// config.control_plane.  Aggregators live in tree member order (the
  /// order is fanout-independent, so reset cycles never reshuffle the
  /// entity arena — rewire only re-links parents).
  struct ControlTree {
    ctrl::AggregationTree tree;
    std::vector<std::unique_ptr<ctrl::Aggregator>> aggs;  ///< member order
    /// resource index -> tree member index (the resource's own leaf).
    std::vector<std::uint32_t> member_of_resource;
  };
  std::vector<std::vector<ControlTree>> ctrl_trees_;  ///< [cluster][estimator]
  bool ctrl_active_ = false;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<StateSampler> sampler_;
  double mean_service_time_ = 1.0;
  bool ran_ = false;
  sim::EntityId next_entity_id_ = 0;
  // Entity ids pinned at first assignment so a reset-recreated injector
  // or sampler derives the same substreams as the original build.
  sim::EntityId injector_entity_id_ = 0;
  bool injector_id_assigned_ = false;
  sim::EntityId sampler_entity_id_ = 0;
  // The arrival stream is a pure function of (config minus tuning), so
  // it is resolved once — through the process-wide ArrivalCache — and
  // replayed by every reset cycle (invalidated only when a rate-only
  // reset moves the interarrival mean).  Shared and immutable: other
  // systems replaying the same workload alias the same vector.
  std::shared_ptr<const std::vector<workload::Job>> arrival_jobs_;
  bool arrivals_cached_ = false;
  bool workload_from_cache_ = false;
  // Streaming arrival path (result_mode == kStreaming): jobs are pulled
  // one at a time from this stream into arena slots, so per-job memory
  // stays O(1); the accumulator folds the workload stats that the
  // materialized path computes from the full vector.
  std::unique_ptr<workload::JobStream> arrival_stream_;
  workload::JobArena arrival_arena_;
  workload::TraceStatsAccumulator stream_stats_;
  /// Per-resource heterogeneity multipliers in build order, kept so a
  /// rate-only reset re-rates the pool exactly like a fresh build.
  std::vector<double> rate_multipliers_;

  // Telemetry state (inert when config_.telemetry is null).
  obs::PhaseProfiler* profiler_ = nullptr;  ///< cached from the handle
  obs::PhaseId run_phase_ = 0;
  obs::PhaseId workload_phase_ = 0;
  obs::TraceRecorder* trace_ = nullptr;  ///< cached from the handle
  bool trace_messages_ = false;
  obs::TraceTid msg_tid_ = 0;
  obs::TraceTid jobs_tid_ = 0;
  bool trace_jobs_ = false;
  // Previous probe window, for busy-time-delta utilizations.
  double probe_prev_time_ = 0.0;
  double probe_prev_sched_busy_ = 0.0;
  double probe_prev_est_busy_ = 0.0;
  double probe_prev_mw_busy_ = 0.0;
};

}  // namespace scal::grid
