#pragma once
// Status estimator: "the RMS nodes which receive the status updates from
// RP resources and distribute to the scheduling decision makers"
// (paper, Figure 4 caption).  An estimator is a FIFO server: it vets
// each incoming update, batches updates that arrive within a short
// window, and forwards each batch upstream to its scheduler.  Its
// offered work is part of G(k).  Case 3 scales the number of these.

#include <functional>
#include <vector>

#include "grid/messages.hpp"
#include "obs/phase_profiler.hpp"
#include "sim/server.hpp"

namespace scal::grid {

class Estimator : public sim::Server {
 public:
  /// `forward` ships a finished batch toward the cluster's scheduler
  /// (the system wires in the network hop).
  Estimator(sim::Simulator& sim, sim::EntityId id, ClusterId cluster,
            std::uint32_t index, double process_cost, double forward_cost,
            double batch_window, std::function<void(StatusBatch)> forward);

  /// An update arrives from a resource (network delay already paid).
  /// Taken by value: the estimator annotates its own copy with the
  /// idle-transition flag relative to its own last view.
  void receive_update(StatusUpdate update);

  /// A coalesced bundle arrives from the aggregation tree's root child
  /// (control plane, docs/CONTROL_PLANE.md).  One queue item charges
  /// process_cost x n — same vetting rate as n singleton updates — then
  /// every update is annotated and buffered exactly like
  /// receive_update, so downstream batching semantics are unchanged.
  void receive_bundle(std::vector<StatusUpdate> updates);

  ClusterId cluster() const noexcept { return cluster_; }
  std::uint32_t index() const noexcept { return index_; }
  std::uint64_t updates_handled() const noexcept { return updates_; }
  std::uint64_t batches_forwarded() const noexcept { return batches_; }

  /// Rewind to the just-constructed state (reusable-system path):
  /// server counters, the batch buffer, and the per-resource load views
  /// are all dropped; identity, costs, and forward wiring survive.
  void reset();

  /// Attach the (optional) phase profiler: update processing runs
  /// inside the given phase.  Null profiler = one pointer test.
  void attach_profiler(obs::PhaseProfiler* profiler,
                       obs::PhaseId update_phase) noexcept {
    profiler_ = profiler;
    update_phase_ = update_phase;
  }

 private:
  void flush();
  /// Annotate `update` against the last-load view and buffer it; the
  /// caller has already charged the processing cost.
  void integrate(StatusUpdate update);

  ClusterId cluster_;
  std::uint32_t index_;
  double process_cost_;
  double forward_cost_;
  double batch_window_;
  std::function<void(StatusBatch)> forward_;

  std::vector<StatusUpdate> buffer_;
  /// Last load seen per resource index, for idle-transition detection
  /// (negative = never seen).
  std::vector<double> last_load_;
  bool flush_scheduled_ = false;
  std::uint64_t updates_ = 0;
  std::uint64_t batches_ = 0;

  obs::PhaseProfiler* profiler_ = nullptr;
  obs::PhaseId update_phase_ = 0;
};

}  // namespace scal::grid
