#include "grid/config.hpp"

#include <algorithm>
#include <stdexcept>

namespace scal::grid {

std::string to_string(RmsKind kind) {
  switch (kind) {
    case RmsKind::kCentral: return "CENTRAL";
    case RmsKind::kLowest: return "LOWEST";
    case RmsKind::kReserve: return "RESERVE";
    case RmsKind::kAuction: return "AUCTION";
    case RmsKind::kSenderInitiated: return "S-I";
    case RmsKind::kReceiverInitiated: return "R-I";
    case RmsKind::kSymmetric: return "Sy-I";
    case RmsKind::kHierarchical: return "HIER";
    case RmsKind::kRandom: return "RANDOM";
  }
  return "?";
}

RmsKind rms_from_string(const std::string& name) {
  for (const RmsKind kind : kAllRmsKinds) {
    if (to_string(kind) == name) return kind;
  }
  if (name == "HIER") return RmsKind::kHierarchical;
  if (name == "RANDOM") return RmsKind::kRandom;
  throw std::invalid_argument("rms_from_string: unknown RMS '" + name + "'");
}

void GridConfig::validate() const {
  if (topology.nodes < 4) {
    throw std::invalid_argument("GridConfig: need at least 4 nodes");
  }
  if (cluster_size < 3) {
    throw std::invalid_argument(
        "GridConfig: cluster needs scheduler + estimator + resource");
  }
  if (estimators_per_cluster == 0) {
    throw std::invalid_argument("GridConfig: need >= 1 estimator per cluster");
  }
  if (estimators_per_cluster + 2 > cluster_size) {
    throw std::invalid_argument(
        "GridConfig: estimators leave no room for resources");
  }
  if (!(service_rate > 0.0)) {
    throw std::invalid_argument("GridConfig: service rate must be positive");
  }
  if (!(heterogeneity >= 0.0) || heterogeneity > 0.9) {
    throw std::invalid_argument(
        "GridConfig: heterogeneity must be in [0, 0.9]");
  }
  if (!(horizon > 0.0)) {
    throw std::invalid_argument("GridConfig: horizon must be positive");
  }
  if (!(tuning.update_interval > 0.0) || tuning.neighborhood_size == 0 ||
      !(tuning.link_delay_scale > 0.0) || !(tuning.volunteer_interval > 0.0)) {
    throw std::invalid_argument("GridConfig: bad tuning values");
  }
  if (tuning.agg_fanout == 0 || tuning.agg_fanout > 64 ||
      tuning.agg_batch == 0 || tuning.agg_batch > 4096 ||
      !(tuning.agg_flush >= 0.0)) {
    throw std::invalid_argument("GridConfig: bad aggregation tuning values");
  }
  if (!(costs.ctrl_process_update >= 0.0) ||
      !(costs.ctrl_forward_batch >= 0.0)) {
    throw std::invalid_argument(
        "GridConfig: aggregator costs must be non-negative");
  }
  if (!(protocol.t_l > 0.0 && protocol.t_l < 1.0) ||
      !(protocol.delta > 0.0 && protocol.delta <= 1.0)) {
    throw std::invalid_argument("GridConfig: thresholds must be in (0,1)");
  }
  if (!(control_loss_probability >= 0.0) ||
      !(control_loss_probability < 1.0)) {
    throw std::invalid_argument(
        "GridConfig: control loss probability must be in [0, 1)");
  }
  if (!(protocol.reply_timeout > 0.0)) {
    throw std::invalid_argument("GridConfig: reply timeout must be positive");
  }
  faults.validate();
  workload_source.validate();
  if (!trace_path.empty() && !workload_source.is_default()) {
    throw std::invalid_argument(
        "GridConfig: trace_path and workload_source are mutually exclusive "
        "(use workload_source kind=trace)");
  }
}

std::size_t GridConfig::cluster_count() const {
  return std::max<std::size_t>(1, topology.nodes / cluster_size);
}

}  // namespace scal::grid
