#include "grid/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "grid/system.hpp"
#include "util/log.hpp"

namespace scal::grid {

const char* to_string(MsgKind kind) {
  switch (kind) {
    case MsgKind::kPollRequest: return "PollRequest";
    case MsgKind::kPollReply: return "PollReply";
    case MsgKind::kJobTransfer: return "JobTransfer";
    case MsgKind::kReservation: return "Reservation";
    case MsgKind::kReserveProbe: return "ReserveProbe";
    case MsgKind::kReserveReply: return "ReserveReply";
    case MsgKind::kAuctionInvite: return "AuctionInvite";
    case MsgKind::kAuctionBid: return "AuctionBid";
    case MsgKind::kAuctionAward: return "AuctionAward";
    case MsgKind::kVolunteer: return "Volunteer";
    case MsgKind::kDemandRequest: return "DemandRequest";
    case MsgKind::kDemandReply: return "DemandReply";
    case MsgKind::kNoJob: return "NoJob";
  }
  return "?";
}

namespace {

/// Receive-side processing cost of a message, from the cost model.
double receive_cost(const CostModel& costs, MsgKind kind) {
  switch (kind) {
    case MsgKind::kPollRequest:
    case MsgKind::kPollReply:
    case MsgKind::kReserveProbe:
    case MsgKind::kReserveReply:
    case MsgKind::kDemandRequest:
    case MsgKind::kDemandReply:
    case MsgKind::kNoJob:
      return costs.sched_poll;
    case MsgKind::kJobTransfer:
    case MsgKind::kAuctionAward:
      return costs.sched_transfer;
    case MsgKind::kReservation:
    case MsgKind::kVolunteer:
    case MsgKind::kAuctionInvite:
      return costs.sched_advert;
    case MsgKind::kAuctionBid:
      return costs.sched_bid;
  }
  return 0.0;
}

}  // namespace

SchedulerBase::SchedulerBase(GridSystem& system, sim::EntityId id,
                             ClusterId cluster, net::NodeId node)
    : Server(system.simulator(), id,
             "scheduler/" + std::to_string(cluster)),
      system_(&system), cluster_(cluster), node_(node),
      rng_(system.seed(), "scheduler/" + std::to_string(cluster)) {}

void SchedulerBase::init_tables(const std::vector<ClusterId>& clusters) {
  for (const ClusterId c : clusters) {
    // Optimistic zero-load start: schedulers know their membership from
    // deployment; the first status batches correct any drift.
    if (std::vector<ResourceView>* existing = find_table(c)) {
      candidate_count_ -= existing->size();
      existing->assign(system_->resource_count(c), ResourceView{});
      candidate_count_ += existing->size();
      continue;
    }
    ClusterTable table{c, {}};
    table.views.assign(system_->resource_count(c), ResourceView{});
    candidate_count_ += table.views.size();
    const auto pos = std::lower_bound(
        tables_.begin(), tables_.end(), c,
        [](const ClusterTable& t, ClusterId id) { return t.cluster < id; });
    tables_.insert(pos, std::move(table));
  }
}

void SchedulerBase::reset() {
  reset_server();
  rng_ = util::RandomStream(system_->seed(),
                            "scheduler/" + std::to_string(cluster_));
  for (ClusterTable& table : tables_) {
    std::fill(table.views.begin(), table.views.end(), ResourceView{});
  }
  token_counter_ = 1;
  // Zero the mixin fields directly (enable_robustness validates against
  // non-positive arguments); setup re-enables them when faults are on.
  staleness_window_ = 0.0;
  requeue_budget_ = 0;
  retry_budget_ = 0;
  retry_backoff_base_ = 0.0;
  blackout_ = false;
  on_reset();
}

std::vector<ResourceView>* SchedulerBase::find_table(ClusterId cluster) {
  const auto it = std::lower_bound(
      tables_.begin(), tables_.end(), cluster,
      [](const ClusterTable& t, ClusterId id) { return t.cluster < id; });
  if (it == tables_.end() || it->cluster != cluster) return nullptr;
  return &it->views;
}

const std::vector<ResourceView>* SchedulerBase::find_table(
    ClusterId cluster) const {
  return const_cast<SchedulerBase*>(this)->find_table(cluster);
}

const std::vector<ResourceView>& SchedulerBase::table(
    ClusterId cluster) const {
  const std::vector<ResourceView>* t = find_table(cluster);
  if (t == nullptr) {
    throw std::out_of_range("SchedulerBase: cluster not tracked");
  }
  return *t;
}

bool SchedulerBase::tracks(ClusterId cluster) const {
  return find_table(cluster) != nullptr;
}

ResourceIndex SchedulerBase::least_loaded(ClusterId cluster) const {
  const auto& t = table(cluster);
  if (staleness_window_ > 0.0) {
    // Robustness: entries past the staleness window are treated as down
    // and evicted from the scan.  If everything is stale (a blackout
    // just ended, say) fall through to the raw scan — the job must land
    // somewhere.
    ResourceIndex fresh = kNoResource;
    std::uint64_t evicted = 0;
    for (ResourceIndex r = 0; r < t.size(); ++r) {
      if (!view_usable(t[r])) {
        ++evicted;
        continue;
      }
      if (fresh == kNoResource || t[r].load < t[fresh].load) fresh = r;
    }
    if (evicted > 0) system_->metrics().count_status_evictions(evicted);
    if (fresh != kNoResource) return fresh;
  }
  ResourceIndex best = 0;
  for (ResourceIndex r = 1; r < t.size(); ++r) {
    if (t[r].load < t[best].load) best = r;
  }
  return best;
}

double SchedulerBase::least_load(ClusterId cluster) const {
  return table(cluster)[least_loaded(cluster)].load;
}

double SchedulerBase::busy_fraction(ClusterId cluster) const {
  const auto& t = table(cluster);
  if (t.empty()) return 0.0;
  std::size_t busy = 0;
  for (const ResourceView& v : t) {
    // Robustness: a stale entry is presumed down, i.e. not usable
    // capacity, so it counts toward the busy fraction.
    if (v.load > 0.5 || !view_usable(v)) ++busy;
  }
  return static_cast<double>(busy) / static_cast<double>(t.size());
}

ResourceIndex SchedulerBase::most_backlogged(ClusterId cluster) const {
  const auto& t = table(cluster);
  ResourceIndex best = kNoResource;
  double best_load = 1.5;  // needs at least one queued job (load >= 2)
  for (ResourceIndex r = 0; r < t.size(); ++r) {
    // Robustness: never try to steal from a presumed-down resource.
    if (!view_usable(t[r])) continue;
    if (t[r].load > best_load) {
      best_load = t[r].load;
      best = r;
    }
  }
  return best;
}

void SchedulerBase::deliver_job(workload::Job job) {
  const CostModel& costs = system_->config().costs;
  // Queue-depth probe: sample this server's backlog at the decision
  // point, before the new work item joins it.
  system_->metrics().observe_decision_queue(queue_length());
  // A decision scans every resource this scheduler tracks: the local
  // cluster for the distributed policies, the whole pool for CENTRAL —
  // that asymmetry is what makes CENTRAL's per-decision cost grow with
  // system size in Case 1.
  const double cost = costs.sched_decision_base +
                      costs.sched_decision_per_candidate *
                          static_cast<double>(candidate_count_);
  submit(cost, [this, job = std::move(job)]() mutable {
    obs::PhaseProfiler::Scope scope(profiler_, decision_phase_);
    handle_job(std::move(job));
  });
}

void SchedulerBase::enable_robustness(double staleness_window,
                                      std::uint32_t requeue_budget,
                                      std::uint32_t retry_budget,
                                      double retry_backoff_base) {
  if (!(staleness_window > 0.0) || !(retry_backoff_base > 0.0)) {
    throw std::invalid_argument(
        "SchedulerBase: robustness window/backoff must be positive");
  }
  staleness_window_ = staleness_window;
  requeue_budget_ = requeue_budget;
  retry_budget_ = retry_budget;
  retry_backoff_base_ = retry_backoff_base;
}

void SchedulerBase::deliver_requeue(workload::Job job) {
  job.attempts += 1;
  if (job.attempts > requeue_budget_) {
    // Budget exhausted: the job is lost.  It stays in the books as
    // unfinished (arrived == completed + unfinished still holds); the
    // dedicated counter attributes the loss to the fault layer.
    system_->metrics().count_job_lost();
    return;
  }
  system_->metrics().count_job_requeued();
  deliver_job(std::move(job));
}

void SchedulerBase::deliver_batch(StatusBatch batch) {
  if (blackout_) {
    system_->metrics().count_blackout_drop();
    return;
  }
  const CostModel& costs = system_->config().costs;
  const double cost =
      costs.sched_batch_base +
      costs.sched_per_update * static_cast<double>(batch.updates.size());
  submit(cost, [this, batch = std::move(batch)]() {
    obs::PhaseProfiler::Scope scope(profiler_, batch_phase_);
    fold_batch(batch);
    after_batch(batch);
  });
}

void SchedulerBase::fold_batch(const StatusBatch& batch) {
  std::vector<ResourceView>* found = find_table(batch.cluster);
  if (found == nullptr) return;  // not interested in this cluster
  auto& t = *found;
  for (const StatusUpdate& u : batch.updates) {
    system_->metrics().count_update_received();
    if (u.resource >= t.size()) continue;
    // Status can be stale relative to optimistic dispatch bumps; newer
    // stamps always win.
    if (u.stamp >= t[u.resource].stamp) {
      t[u.resource].load = u.load;
      t[u.resource].stamp = u.stamp;
    }
    // Idle-event triggers are per estimator stream (the estimator sets
    // the flag against its own last view), so replicated estimators
    // each fire their own trigger.
    if (wants_idle_events() && batch.cluster == cluster_ &&
        u.idle_transition) {
      const double idle_cost = system_->config().costs.sched_idle_event;
      submit(idle_cost, [this, r = u.resource, e = batch.estimator]() {
        handle_idle_resource(r, e);
      });
    }
  }
}

void SchedulerBase::deliver_message(RmsMessage msg) {
  // A blacked-out scheduler's control plane is down, but job-carrying
  // transfers must not vanish (conservation): they queue as normal and
  // are decided once the processor works through its backlog.
  if (blackout_ && !msg.job.has_value()) {
    system_->metrics().count_blackout_drop();
    return;
  }
  const double cost = receive_cost(system_->config().costs, msg.kind);
  submit(cost, [this, msg = std::move(msg)]() { handle_message(msg); });
}

void SchedulerBase::handle_message(const RmsMessage& msg) {
  SCAL_DEBUG("scheduler " << cluster_ << " ignoring " << to_string(msg.kind)
                          << " from " << msg.from);
}

std::size_t SchedulerBase::parked_jobs() const { return 0; }

void SchedulerBase::dispatch(ClusterId cluster, ResourceIndex r,
                             workload::Job job) {
  std::vector<ResourceView>* t = find_table(cluster);
  if (t == nullptr || r >= t->size()) {
    throw std::out_of_range("SchedulerBase::dispatch: bad target");
  }
  // Staleness probe: sim-time age of the status snapshot this placement
  // decision acted on (before the optimistic bump refreshes nothing —
  // bumps adjust load, not the stamp).
  system_->metrics().observe_staleness(now() - (*t)[r].stamp);
  // Optimistic bump so back-to-back decisions fan out instead of herding
  // onto the same (momentarily) least-loaded resource.
  (*t)[r].load += 1.0;
  system_->ship_job_to_resource(node_, cluster, r, std::move(job));
}

void SchedulerBase::send_message(ClusterId dst, RmsMessage msg,
                                 double send_cost) {
  msg.from = cluster_;
  msg.to = dst;
  msg.stamp = now();
  submit(send_cost, [this, msg = std::move(msg)]() {
    system_->route_message(node_, msg, uses_middleware());
  });
}

std::vector<ClusterId> SchedulerBase::random_peers(std::size_t count) {
  const std::size_t clusters = system_->cluster_count();
  if (clusters <= 1) return {};
  const std::size_t want = std::min(count, clusters - 1);
  // Sample from [0, clusters-2] and skip over self.
  auto picks = rng_.sample_without_replacement(clusters - 1, want);
  std::vector<ClusterId> peers;
  peers.reserve(want);
  for (const std::size_t p : picks) {
    const auto peer = static_cast<ClusterId>(p);
    peers.push_back(peer >= cluster_ ? peer + 1 : peer);
  }
  return peers;
}

double SchedulerBase::estimate_awt(ClusterId cluster) const {
  return least_load(cluster) * system_->mean_service_time();
}

double SchedulerBase::estimate_ert(double exec_demand) const {
  return exec_demand / system_->config().service_rate;
}

double SchedulerBase::predict_transfer_delay(ClusterId dst) const {
  const auto& peer = system_->layout().clusters.at(dst);
  return system_->network().predict_delay(node_, peer.scheduler_node,
                                          system_->config().costs.size_job);
}

}  // namespace scal::grid
