#include "grid/joblog.hpp"

namespace scal::grid {

const char* to_string(JobEvent event) {
  switch (event) {
    case JobEvent::kArrival: return "arrival";
    case JobEvent::kTransfer: return "transfer";
    case JobEvent::kDispatch: return "dispatch";
    case JobEvent::kStart: return "start";
    case JobEvent::kComplete: return "complete";
    case JobEvent::kKilled: return "killed";
  }
  return "?";
}

void JobLog::record(workload::JobId job, JobEvent event, sim::Time at,
                    std::uint32_t place) {
  if (!enabled_) return;
  if (capacity_ != 0 && records_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  by_job_[job].push_back(records_.size());
  records_.push_back(JobLogRecord{job, event, at, place});
}

std::vector<JobLogRecord> JobLog::timeline(workload::JobId job) const {
  std::vector<JobLogRecord> out;
  const auto it = by_job_.find(job);
  if (it == by_job_.end()) return out;
  out.reserve(it->second.size());
  for (const std::size_t index : it->second) {
    out.push_back(records_[index]);
  }
  return out;
}

std::size_t JobLog::count(JobEvent event) const {
  std::size_t n = 0;
  for (const JobLogRecord& r : records_) {
    if (r.event == event) ++n;
  }
  return n;
}

util::Samples JobLog::delays(JobEvent from, JobEvent to) const {
  util::Samples out;
  for (const auto& [job, indices] : by_job_) {
    (void)job;
    double t_from = -1.0, t_to = -1.0;
    for (const std::size_t index : indices) {
      const JobLogRecord& r = records_[index];
      if (t_from < 0.0 && r.event == from) t_from = r.at;
      if (t_to < 0.0 && r.event == to) t_to = r.at;
    }
    if (t_from >= 0.0 && t_to >= t_from) out.add(t_to - t_from);
  }
  return out;
}

std::size_t JobLog::transfer_hops(workload::JobId job) const {
  std::size_t hops = 0;
  const auto it = by_job_.find(job);
  if (it == by_job_.end()) return 0;
  for (const std::size_t index : it->second) {
    if (records_[index].event == JobEvent::kTransfer) ++hops;
  }
  return hops;
}

}  // namespace scal::grid
