#include "grid/digest.hpp"

#include <cstring>
#include <string>

namespace scal::grid {

namespace {

/// Two independent FNV-1a style lanes with distinct offsets/primes; each
/// absorbed word perturbs both, giving a 128-bit fingerprint without any
/// external dependency.  Collisions would need to agree in both lanes.
class Mix128 {
 public:
  void word(std::uint64_t w) {
    a_ = (a_ ^ w) * 0x100000001B3ull;
    a_ ^= a_ >> 29;
    b_ = (b_ ^ (w + 0x9E3779B97F4A7C15ull)) * 0xC2B2AE3D27D4EB4Full;
    b_ ^= b_ >> 31;
  }

  void real(double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    word(bits);
  }

  void text(const std::string& value) {
    word(value.size());
    for (const char c : value) word(static_cast<unsigned char>(c));
  }

  std::array<std::uint64_t, 2> finish() const { return {a_, b_}; }

 private:
  std::uint64_t a_ = 0xCBF29CE484222325ull;
  std::uint64_t b_ = 0x6C62272E07BB0142ull;
};

}  // namespace

std::array<std::uint64_t, 2> config_digest(const GridConfig& config,
                                           bool include_tuning,
                                           bool include_rates) {
  Mix128 mix;

  const net::TopologyConfig& topo = config.topology;
  mix.word(static_cast<std::uint64_t>(topo.kind));
  mix.word(topo.nodes);
  mix.word(topo.pa_edges_per_node);
  mix.real(topo.waxman_alpha);
  mix.real(topo.waxman_beta);
  mix.word(topo.lattice_neighbors);
  mix.word(topo.ts_transit_domains);
  mix.word(topo.ts_transit_size);
  mix.word(topo.ts_stub_size);
  mix.real(topo.ts_backbone_speedup);
  mix.real(topo.latency_min);
  mix.real(topo.latency_max);
  mix.real(topo.bandwidth);

  mix.word(config.cluster_size);
  mix.word(config.estimators_per_cluster);
  if (include_rates) mix.real(config.service_rate);
  mix.real(config.heterogeneity);
  mix.word(static_cast<std::uint64_t>(config.rms));
  mix.word(config.control_plane ? 1u : 0u);

  if (include_tuning) {
    mix.real(config.tuning.update_interval);
    mix.word(config.tuning.neighborhood_size);
    mix.real(config.tuning.link_delay_scale);
    mix.real(config.tuning.volunteer_interval);
    mix.word(config.tuning.agg_fanout);
    mix.word(config.tuning.agg_batch);
    mix.real(config.tuning.agg_flush);
  }

  const CostModel& costs = config.costs;
  mix.real(costs.est_process_update);
  mix.real(costs.est_forward_batch);
  mix.real(costs.sched_batch_base);
  mix.real(costs.sched_per_update);
  mix.real(costs.sched_decision_base);
  mix.real(costs.sched_decision_per_candidate);
  mix.real(costs.sched_poll);
  mix.real(costs.sched_transfer);
  mix.real(costs.sched_advert);
  mix.real(costs.sched_bid);
  mix.real(costs.sched_idle_event);
  mix.real(costs.middleware_service);
  mix.real(costs.ctrl_process_update);
  mix.real(costs.ctrl_forward_batch);
  mix.real(costs.job_control);
  mix.real(costs.size_update);
  mix.real(costs.size_control);
  mix.real(costs.size_job);

  const ProtocolParams& protocol = config.protocol;
  mix.real(protocol.t_cpu);
  mix.real(protocol.t_l);
  mix.real(protocol.delta);
  mix.real(protocol.psi);
  mix.real(protocol.auction_window);
  mix.real(protocol.advert_ttl_factor);
  mix.real(protocol.estimator_batch_window);
  mix.real(protocol.wait_queue_timeout);
  mix.real(protocol.reply_timeout);

  const workload::WorkloadConfig& w = config.workload;
  if (include_rates) mix.real(w.mean_interarrival);
  mix.word(static_cast<std::uint64_t>(w.exec_model));
  mix.real(w.lognormal_mu);
  mix.real(w.lognormal_sigma);
  mix.real(w.pareto_alpha);
  mix.real(w.pareto_lo);
  mix.real(w.pareto_hi);
  mix.real(w.uniform_lo);
  mix.real(w.uniform_hi);
  mix.real(w.requested_factor_max);
  mix.real(w.t_cpu);
  mix.real(w.benefit_lo);
  mix.real(w.benefit_hi);
  mix.word(w.clusters);
  mix.real(w.diurnal_amplitude);
  mix.real(w.diurnal_period);
  mix.real(w.origin_hotspot_weight);

  mix.word(config.seed);
  mix.real(config.horizon);
  mix.real(config.control_loss_probability);

  // The spec string covers every enabled fault class; the robustness
  // params are hashed explicitly because to_spec() omits them when no
  // class is enabled (and they still matter the moment one is).
  mix.text(config.faults.to_spec());
  mix.real(config.faults.robustness.staleness_factor);
  mix.word(config.faults.robustness.retry_budget);
  mix.real(config.faults.robustness.retry_backoff_base);
  mix.word(config.faults.robustness.requeue_budget);

  mix.real(config.sample_interval);
  mix.word(config.job_log ? 1u : 0u);
  mix.word(config.job_log_capacity);
  mix.word(static_cast<std::uint64_t>(config.result_mode));
  mix.text(config.trace_path);
  mix.word(config.update_suppression ? 1u : 0u);

  const workload::SourceSpec& src = config.workload_source;
  mix.word(static_cast<std::uint64_t>(src.kind));
  mix.text(src.path);
  mix.real(src.time_scale);
  mix.text(workload::modulators_to_spec(src.modulators));

  return mix.finish();
}

std::array<std::uint64_t, 2> workload_digest(const GridConfig& config) {
  Mix128 mix;

  // Everything schedule_arrivals feeds into the source stack: the
  // workload model (clusters resolves to cluster_count() at generation
  // time, so hash that), the declared source, the legacy trace
  // shorthand, the seed the substreams derive from, and the horizon
  // that terminates the stream.
  const workload::WorkloadConfig& w = config.workload;
  mix.real(w.mean_interarrival);
  mix.word(static_cast<std::uint64_t>(w.exec_model));
  mix.real(w.lognormal_mu);
  mix.real(w.lognormal_sigma);
  mix.real(w.pareto_alpha);
  mix.real(w.pareto_lo);
  mix.real(w.pareto_hi);
  mix.real(w.uniform_lo);
  mix.real(w.uniform_hi);
  mix.real(w.requested_factor_max);
  mix.real(w.t_cpu);
  mix.real(w.benefit_lo);
  mix.real(w.benefit_hi);
  mix.word(config.cluster_count());
  mix.real(w.diurnal_amplitude);
  mix.real(w.diurnal_period);
  mix.real(w.origin_hotspot_weight);

  const workload::SourceSpec& src = config.workload_source;
  mix.word(static_cast<std::uint64_t>(src.kind));
  mix.text(src.path);
  mix.real(src.time_scale);
  mix.text(workload::modulators_to_spec(src.modulators));
  mix.text(config.trace_path);

  mix.word(config.seed);
  mix.real(config.horizon);

  return mix.finish();
}

}  // namespace scal::grid
