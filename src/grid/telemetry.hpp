#pragma once
// Grid-side telemetry bridge: converts grid-layer data (job logs,
// configs, results) into the obs-layer export formats.  Lives in grid —
// obs stays below sim and knows nothing about grids, jobs, or policies.

#include "grid/config.hpp"
#include "grid/joblog.hpp"
#include "grid/metrics.hpp"
#include "obs/manifest.hpp"
#include "obs/trace.hpp"

namespace scal::grid {

/// Convert a job-lifecycle log into async trace spans on `tid`: one span
/// per job from arrival to completion, with transfer / dispatch / start
/// instants inside it.  Jobs still in flight at `horizon` are closed
/// there so the exported trace has matched pairs.
void export_job_spans(const JobLog& log, obs::TraceRecorder& trace,
                      obs::TraceTid tid, double horizon);

/// Snapshot config, result scalars, and every protocol counter into the
/// manifest (label / git / wall-clock fields are owned by obs).
void fill_manifest(obs::RunManifest& manifest, const GridConfig& config,
                   const SimulationResult& result);

}  // namespace scal::grid
