#include "grid/cluster.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace scal::grid {

std::size_t ClusterLayout::total_resources() const {
  std::size_t n = 0;
  for (const auto& c : clusters) n += c.resource_nodes.size();
  return n;
}

std::size_t ClusterLayout::total_estimators() const {
  std::size_t n = 0;
  for (const auto& c : clusters) n += c.estimator_nodes.size();
  return n;
}

ClusterLayout partition_into_clusters(const net::Graph& graph,
                                      std::size_t cluster_count,
                                      std::size_t estimators_per_cluster,
                                      util::RandomStream& rng) {
  const std::size_t n = graph.node_count();
  if (cluster_count == 0) {
    throw std::invalid_argument("partition: zero clusters");
  }
  const std::size_t min_size = 2 + estimators_per_cluster;
  if (n < cluster_count * min_size) {
    throw std::invalid_argument(
        "partition: not enough nodes for the requested clusters");
  }
  if (!graph.connected()) {
    throw std::invalid_argument("partition: graph must be connected");
  }

  // Pick spread-out seeds: the first seed is random; each next seed is the
  // unassigned node farthest (in hops) from all chosen seeds.
  std::vector<net::NodeId> seeds;
  seeds.reserve(cluster_count);
  std::vector<std::uint32_t> hop_dist(
      n, std::numeric_limits<std::uint32_t>::max());
  auto bfs_relax = [&](net::NodeId from) {
    std::queue<net::NodeId> q;
    hop_dist[from] = 0;
    q.push(from);
    while (!q.empty()) {
      const net::NodeId u = q.front();
      q.pop();
      for (const net::Link& l : graph.neighbors(u)) {
        if (hop_dist[l.to] > hop_dist[u] + 1) {
          hop_dist[l.to] = hop_dist[u] + 1;
          q.push(l.to);
        }
      }
    }
  };
  const auto first = static_cast<net::NodeId>(
      rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  seeds.push_back(first);
  bfs_relax(first);
  while (seeds.size() < cluster_count) {
    net::NodeId farthest = 0;
    std::uint32_t best = 0;
    for (net::NodeId v = 0; v < n; ++v) {
      if (hop_dist[v] != std::numeric_limits<std::uint32_t>::max() &&
          hop_dist[v] > best) {
        best = hop_dist[v];
        farthest = v;
      }
    }
    seeds.push_back(farthest);
    bfs_relax(farthest);
  }

  // Balanced multi-source BFS growth: clusters claim nodes round-robin
  // from their frontiers, capped so sizes stay within one of each other.
  ClusterLayout layout;
  layout.cluster_of.assign(n, ~std::uint32_t{0});
  std::vector<std::vector<net::NodeId>> members(cluster_count);
  std::vector<std::queue<net::NodeId>> frontier(cluster_count);
  for (std::size_t c = 0; c < cluster_count; ++c) {
    layout.cluster_of[seeds[c]] = static_cast<std::uint32_t>(c);
    members[c].push_back(seeds[c]);
    frontier[c].push(seeds[c]);
  }
  const std::size_t target =
      (n + cluster_count - 1) / cluster_count;  // ceiling
  std::size_t assigned = cluster_count;
  bool progress = true;
  while (assigned < n && progress) {
    progress = false;
    for (std::size_t c = 0; c < cluster_count && assigned < n; ++c) {
      if (members[c].size() >= target + 1) continue;
      // Claim one unassigned node adjacent to this cluster's frontier.
      while (!frontier[c].empty()) {
        const net::NodeId u = frontier[c].front();
        net::NodeId claimed = net::kInvalidNode;
        for (const net::Link& l : graph.neighbors(u)) {
          if (layout.cluster_of[l.to] == ~std::uint32_t{0}) {
            claimed = l.to;
            break;
          }
        }
        if (claimed == net::kInvalidNode) {
          frontier[c].pop();
          continue;
        }
        layout.cluster_of[claimed] = static_cast<std::uint32_t>(c);
        members[c].push_back(claimed);
        frontier[c].push(claimed);
        ++assigned;
        progress = true;
        break;
      }
    }
  }
  // Orphans (frontiers exhausted by caps): attach to the smallest cluster.
  for (net::NodeId v = 0; v < n; ++v) {
    if (layout.cluster_of[v] == ~std::uint32_t{0}) {
      const auto smallest = static_cast<std::size_t>(std::distance(
          members.begin(),
          std::min_element(members.begin(), members.end(),
                           [](const auto& a, const auto& b) {
                             return a.size() < b.size();
                           })));
      layout.cluster_of[v] = static_cast<std::uint32_t>(smallest);
      members[smallest].push_back(v);
    }
  }

  // Role assignment: highest-degree member hosts the scheduler, the next
  // highest-degree members host estimators, the remainder are resources.
  layout.clusters.resize(cluster_count);
  for (std::size_t c = 0; c < cluster_count; ++c) {
    auto& m = members[c];
    if (m.size() < min_size) {
      // Steal nodes from the largest cluster to satisfy the minimum.
      while (m.size() < min_size) {
        const auto largest = static_cast<std::size_t>(std::distance(
            members.begin(),
            std::max_element(members.begin(), members.end(),
                             [](const auto& a, const auto& b) {
                               return a.size() < b.size();
                             })));
        if (largest == c || members[largest].size() <= min_size) {
          throw std::runtime_error("partition: cannot balance clusters");
        }
        const net::NodeId moved = members[largest].back();
        members[largest].pop_back();
        layout.cluster_of[moved] = static_cast<std::uint32_t>(c);
        m.push_back(moved);
      }
    }
    std::sort(m.begin(), m.end(), [&](net::NodeId a, net::NodeId b) {
      if (graph.degree(a) != graph.degree(b)) {
        return graph.degree(a) > graph.degree(b);
      }
      return a < b;
    });
    auto& cluster = layout.clusters[c];
    cluster.scheduler_node = m[0];
    cluster.estimator_nodes.assign(m.begin() + 1,
                                   m.begin() + 1 +
                                       static_cast<std::ptrdiff_t>(
                                           estimators_per_cluster));
    cluster.resource_nodes.assign(
        m.begin() + 1 + static_cast<std::ptrdiff_t>(estimators_per_cluster),
        m.end());
  }
  return layout;
}

}  // namespace scal::grid
