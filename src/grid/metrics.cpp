#include "grid/metrics.hpp"

#include <stdexcept>

#include "obs/histogram.hpp"

namespace scal::grid {

const util::Samples& MetricsCollector::response_times() const {
  const util::Samples* samples = sink_->samples();
  if (samples == nullptr) {
    throw std::logic_error(
        "MetricsCollector::response_times: the streaming sink keeps no "
        "sample store; use response_mean()/response_p95()");
  }
  return *samples;
}

void MetricsCollector::observe_decision_queue(std::size_t depth) {
  if (queue_depth_hist_ != nullptr) {
    queue_depth_hist_->record(static_cast<double>(depth));
  }
}

void MetricsCollector::observe_staleness(double age) {
  if (staleness_hist_ != nullptr) staleness_hist_->record(age);
}

void MetricsCollector::record_arrival(const workload::Job& job) {
  record_job_event(job.id, JobEvent::kArrival, job.arrival,
                   job.origin_cluster);
  ++arrived_;
  if (job.job_class == workload::JobClass::kLocal) ++local_;
  else ++remote_;
}

void MetricsCollector::record_completion(const workload::Job& job,
                                         sim::Time completion,
                                         double service_time,
                                         double control_cost) {
  ++completed_;
  control_overhead_ += control_cost;
  const double response = completion - job.arrival;
  sink_->record_response(response);
  if (response_hist_ != nullptr) response_hist_->record(response);
  if (wait_hist_ != nullptr) wait_hist_->record(response - service_time);
  if (slowdown_hist_ != nullptr && service_time > 0.0) {
    slowdown_hist_->record(response / service_time);
  }
  // Success per the paper's user-benefit function U_b: the response must
  // be within benefit_factor times the job's actual run time.
  if (response <= job.benefit_factor * service_time) {
    ++succeeded_;
    useful_work_ += service_time;
  } else {
    ++missed_;
    wasted_work_ += service_time;
  }
}

void MetricsCollector::record_unfinished(double partial_service_time) {
  ++unfinished_;
  wasted_work_ += partial_service_time;
}

void MetricsCollector::record_job_killed(double partial_service_time) {
  ++killed_;
  wasted_work_ += partial_service_time;
}

MetricsSnapshot MetricsCollector::snapshot() const noexcept {
  MetricsSnapshot s;
  s.useful_work = useful_work_;
  s.wasted_work = wasted_work_;
  s.control_overhead = control_overhead_;
  s.jobs_arrived = arrived_;
  s.jobs_local = local_;
  s.jobs_remote = remote_;
  s.jobs_completed = completed_;
  s.jobs_succeeded = succeeded_;
  s.jobs_missed_deadline = missed_;
  s.jobs_unfinished = unfinished_;
  s.polls = polls_;
  s.transfers = transfers_;
  s.auctions = auctions_;
  s.adverts = adverts_;
  s.updates_received = updates_received_;
  s.updates_suppressed = updates_suppressed_;
  s.jobs_killed = killed_;
  s.jobs_requeued = requeued_;
  s.jobs_lost = lost_;
  s.round_retries = round_retries_;
  s.status_evictions = status_evictions_;
  s.blackout_drops = blackout_drops_;
  return s;
}

void MetricsCollector::merge(const MetricsCollector& other) {
  useful_work_ += other.useful_work_;
  wasted_work_ += other.wasted_work_;
  control_overhead_ += other.control_overhead_;
  arrived_ += other.arrived_;
  local_ += other.local_;
  remote_ += other.remote_;
  completed_ += other.completed_;
  succeeded_ += other.succeeded_;
  missed_ += other.missed_;
  unfinished_ += other.unfinished_;
  polls_ += other.polls_;
  transfers_ += other.transfers_;
  auctions_ += other.auctions_;
  adverts_ += other.adverts_;
  updates_received_ += other.updates_received_;
  updates_suppressed_ += other.updates_suppressed_;
  killed_ += other.killed_;
  requeued_ += other.requeued_;
  lost_ += other.lost_;
  round_retries_ += other.round_retries_;
  status_evictions_ += other.status_evictions_;
  blackout_drops_ += other.blackout_drops_;
  sink_->merge_responses(*other.sink_);
}

void MetricsCollector::reset() {
  useful_work_ = wasted_work_ = control_overhead_ = 0.0;
  arrived_ = local_ = remote_ = 0;
  completed_ = succeeded_ = missed_ = unfinished_ = 0;
  polls_ = transfers_ = auctions_ = adverts_ = 0;
  updates_received_ = updates_suppressed_ = 0;
  killed_ = requeued_ = lost_ = 0;
  round_retries_ = status_evictions_ = blackout_drops_ = 0;
  sink_->clear_responses();
}

}  // namespace scal::grid
