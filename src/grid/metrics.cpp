#include "grid/metrics.hpp"

namespace scal::grid {

void MetricsCollector::record_arrival(const workload::Job& job) {
  if (job_log_) {
    job_log_->record(job.id, JobEvent::kArrival, job.arrival,
                     job.origin_cluster);
  }
  ++arrived_;
  if (job.job_class == workload::JobClass::kLocal) ++local_;
  else ++remote_;
}

void MetricsCollector::record_completion(const workload::Job& job,
                                         sim::Time completion,
                                         double service_time,
                                         double control_cost) {
  ++completed_;
  control_overhead_ += control_cost;
  const double response = completion - job.arrival;
  response_.add(response);
  // Success per the paper's user-benefit function U_b: the response must
  // be within benefit_factor times the job's actual run time.
  if (response <= job.benefit_factor * service_time) {
    ++succeeded_;
    useful_work_ += service_time;
  } else {
    ++missed_;
    wasted_work_ += service_time;
  }
}

void MetricsCollector::record_unfinished(double partial_service_time) {
  ++unfinished_;
  wasted_work_ += partial_service_time;
}

}  // namespace scal::grid
