#pragma once
// ResultMode: how a run accumulates per-job results (docs/PERFORMANCE.md
// memory tiers).  kFull keeps the exact response-time sample store and
// an unbounded job log — the legacy, byte-identical default.  kStreaming
// folds everything online (O(1) memory per job): the mean response stays
// bitwise identical (same summation order), the p95 comes from the HDR
// histogram (bounded relative error), and the job log is bounded by
// GridConfig::job_log_capacity.  Million-job sweeps run kStreaming.

#include <cstdint>
#include <string>

namespace scal::grid {

enum class ResultMode : std::uint8_t {
  kFull,       ///< exact samples + unbounded log (legacy default)
  kStreaming,  ///< online folds, O(1) per job
};

std::string to_string(ResultMode mode);
ResultMode result_mode_from_string(const std::string& name);

}  // namespace scal::grid
