#include "grid/sampler.hpp"

#include <algorithm>
#include <stdexcept>

#include "grid/system.hpp"

namespace scal::grid {

StateSampler::StateSampler(GridSystem& system, sim::EntityId id,
                           double interval)
    : Entity(system.simulator(), id, "sampler"), system_(&system),
      interval_(interval) {
  if (!(interval_ > 0.0)) {
    throw std::invalid_argument("StateSampler: interval must be positive");
  }
}

void StateSampler::start() {
  sim().schedule_in(0.0, [this]() { take_sample(); });
}

void StateSampler::take_sample() {
  StateSample sample;
  sample.at = now();

  std::size_t resources = 0, busy = 0;
  double load_sum = 0.0;
  for (ClusterId c = 0;
       c < static_cast<ClusterId>(system_->cluster_count()); ++c) {
    std::size_t cluster_busy = 0, cluster_resources = 0;
    for (ResourceIndex rix = 0;
         rix < static_cast<ResourceIndex>(system_->resource_count(c));
         ++rix) {
      const Resource& res = system_->resource(c, rix);
      ++resources;
      ++cluster_resources;
      if (res.busy()) {
        ++busy;
        ++cluster_busy;
      }
      load_sum += res.load();
      sample.max_resource_load =
          std::max(sample.max_resource_load, res.load());
    }
    if (cluster_resources > 0) {
      sample.hottest_cluster_busy =
          std::max(sample.hottest_cluster_busy,
                   static_cast<double>(cluster_busy) /
                       static_cast<double>(cluster_resources));
    }
  }
  if (resources > 0) {
    sample.pool_busy_fraction =
        static_cast<double>(busy) / static_cast<double>(resources);
    sample.mean_resource_load = load_sum / static_cast<double>(resources);
  }

  // Scheduler backlog: distinct schedulers only (CENTRAL aliases).
  const SchedulerBase* last = nullptr;
  for (ClusterId c = 0;
       c < static_cast<ClusterId>(system_->cluster_count()); ++c) {
    const SchedulerBase& sched = system_->scheduler_for(c);
    if (&sched == last) continue;
    last = &sched;
    sample.scheduler_backlog += sched.queue_length();
  }
  sample.middleware_backlog = system_->middleware().queue_length();

  samples_.push_back(sample);
  sim().schedule_in(interval_, [this]() { take_sample(); });
}

}  // namespace scal::grid
