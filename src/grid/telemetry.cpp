#include "grid/telemetry.hpp"

#include <unordered_set>

#include "workload/arrival_cache.hpp"

namespace scal::grid {

void export_job_spans(const JobLog& log, obs::TraceRecorder& trace,
                      obs::TraceTid tid, double horizon) {
  std::unordered_set<workload::JobId> open;
  for (const JobLogRecord& rec : log.records()) {
    switch (rec.event) {
      case JobEvent::kArrival:
        trace.async_begin(tid, rec.job, "job", "job", rec.at);
        open.insert(rec.job);
        break;
      case JobEvent::kComplete:
        trace.async_end(tid, rec.job, "job", rec.at);
        open.erase(rec.job);
        break;
      case JobEvent::kTransfer:
      case JobEvent::kDispatch:
      case JobEvent::kStart:
      case JobEvent::kKilled:
        trace.async_instant(tid, rec.job, to_string(rec.event), "job",
                            rec.at);
        break;
    }
  }
  for (const workload::JobId job : open) {
    trace.async_end(tid, job, "job", horizon);
  }
}

void fill_manifest(obs::RunManifest& manifest, const GridConfig& config,
                   const SimulationResult& result) {
  manifest.rms = to_string(config.rms);
  manifest.seed = config.seed;
  manifest.horizon = config.horizon;
  manifest.nodes = config.topology.nodes;
  manifest.clusters = config.cluster_count();
  manifest.estimators_per_cluster = config.estimators_per_cluster;
  manifest.service_rate = config.service_rate;
  manifest.heterogeneity = config.heterogeneity;
  manifest.control_loss_probability = config.control_loss_probability;
  manifest.update_interval = config.tuning.update_interval;
  manifest.neighborhood_size = config.tuning.neighborhood_size;
  manifest.link_delay_scale = config.tuning.link_delay_scale;
  manifest.volunteer_interval = config.tuning.volunteer_interval;
  manifest.mean_interarrival = config.workload.mean_interarrival;

  manifest.F = result.F;
  manifest.G = result.G();
  manifest.H = result.H();
  manifest.efficiency = result.efficiency();
  manifest.throughput = result.throughput;
  manifest.mean_response = result.mean_response;
  manifest.p95_response = result.p95_response;
  manifest.G_scheduler_max_share = result.G_scheduler_max_share;

  // Workload block: only when a non-default source ran, keeping default
  // (and legacy trace_path) manifests byte-identical.
  if (!config.workload_source.is_default()) {
    manifest.workload_source = config.workload_source.summary();
    manifest.workload_jobs = result.workload_stats.jobs;
    manifest.workload_span = result.workload_stats.span;
    manifest.workload_mean_interarrival =
        result.workload_stats.mean_interarrival;
    manifest.workload_mean_exec = result.workload_stats.mean_exec_time;
    manifest.workload_from_cache = result.workload_from_cache;
    manifest.arrival_cache_hits = workload::ArrivalCache::instance().hits();
    manifest.arrival_cache_evictions = result.arrival_cache_evictions;
    manifest.arrival_cache_store_skips = result.arrival_cache_store_skips;
  }

  // Memory block: only when the streaming tier ran, keeping full-mode
  // manifests byte-identical.
  if (result.result_mode == ResultMode::kStreaming) {
    manifest.result_mode = to_string(result.result_mode);
    manifest.job_log_records = result.job_log_records;
    manifest.job_log_dropped = result.job_log_dropped;
    manifest.arena_high_water = result.arena_high_water;
    manifest.arena_reuses = result.arena_reuses;
  }

  // Control-plane block: only when the run had one, keeping legacy
  // manifests byte-identical.
  manifest.control_plane = config.control_plane;
  if (config.control_plane) {
    manifest.agg_fanout = config.tuning.agg_fanout;
    manifest.agg_batch = config.tuning.agg_batch;
    manifest.agg_flush = config.tuning.agg_flush;
    manifest.G_aggregator = result.G_aggregator;
    manifest.ctrl_updates_in = result.ctrl_updates_in;
    manifest.ctrl_updates_coalesced = result.ctrl_updates_coalesced;
    manifest.ctrl_batches = result.ctrl_batches;
    manifest.ctrl_tree_depth = result.ctrl_tree_depth;
    manifest.ctrl_coalescing_ratio = result.ctrl_coalescing_ratio();
  }

  obs::CounterRegistry& counters = manifest.counters;
  counters.set("jobs_arrived", result.jobs_arrived);
  counters.set("jobs_local", result.jobs_local);
  counters.set("jobs_remote", result.jobs_remote);
  counters.set("jobs_completed", result.jobs_completed);
  counters.set("jobs_succeeded", result.jobs_succeeded);
  counters.set("jobs_missed_deadline", result.jobs_missed_deadline);
  counters.set("jobs_unfinished", result.jobs_unfinished);
  counters.set("polls", result.polls);
  counters.set("transfers", result.transfers);
  counters.set("auctions", result.auctions);
  counters.set("adverts", result.adverts);
  counters.set("updates_received", result.updates_received);
  counters.set("updates_suppressed", result.updates_suppressed);
  counters.set("network_messages", result.network_messages);
  counters.set("messages_dropped", result.messages_dropped);
  counters.set("events_dispatched", result.events_dispatched);
  counters.set_real("G_scheduler", result.G_scheduler);
  counters.set_real("G_estimator", result.G_estimator);
  counters.set_real("G_middleware", result.G_middleware);
  counters.set_real("H_control", result.H_control);
  counters.set_real("H_wasted", result.H_wasted);

  // Fault-injection block: only when the run actually injected faults,
  // keeping zero-fault manifests byte-identical to the pre-fault format.
  manifest.fault_spec = config.faults.to_spec();
  if (!manifest.fault_spec.empty()) {
    manifest.availability = result.availability;
    manifest.efficiency_avail = result.efficiency_avail();
    counters.set("resource_crashes", result.resource_crashes);
    counters.set("resource_recoveries", result.resource_recoveries);
    counters.set("jobs_killed", result.jobs_killed);
    counters.set("jobs_requeued", result.jobs_requeued);
    counters.set("jobs_lost", result.jobs_lost);
    counters.set("round_retries", result.round_retries);
    counters.set("status_evictions", result.status_evictions);
    counters.set("blackout_drops", result.blackout_drops);
    counters.set("messages_delayed", result.messages_delayed);
    counters.set("messages_duplicated", result.messages_duplicated);
    counters.set_real("resource_downtime", result.resource_downtime);
    // Gated one level deeper so pre-existing fault manifests also keep
    // their exact counter set.
    if (config.faults.aggregator_blackout.enabled()) {
      counters.set("aggregator_blackouts", result.aggregator_blackouts);
    }
  }
}

}  // namespace scal::grid
