#include "grid/resource.hpp"

#include <algorithm>
#include <stdexcept>

namespace scal::grid {

Resource::Resource(sim::Simulator& sim, sim::EntityId id, ClusterId cluster,
                   ResourceIndex index, double service_rate,
                   double job_control_demand, MetricsCollector& metrics,
                   std::function<void(const StatusUpdate&)> report)
    : Entity(sim, id, "resource"), cluster_(cluster), index_(index),
      service_rate_(service_rate), control_time_(job_control_demand / service_rate),
      metrics_(&metrics), report_(std::move(report)) {
  if (!(service_rate_ > 0.0)) {
    throw std::invalid_argument("Resource: service rate must be positive");
  }
}

double Resource::load() const noexcept {
  return static_cast<double>(queue_.size()) + (in_service_ ? 1.0 : 0.0);
}

double Resource::in_service_partial() const noexcept {
  if (!in_service_) return 0.0;
  // Exclude the job-control setup phase: only count execution progress.
  const double elapsed = now() - service_started_ - control_time_;
  return std::max(0.0, std::min(elapsed, current_service_time_));
}

void Resource::accept_job(workload::Job job) {
  if (down_) {
    metrics_->record_job_event(job.id, JobEvent::kKilled, now(), index_);
    metrics_->record_job_killed(0.0);
    if (kill_handler_) {
      std::vector<workload::Job> bounced;
      bounced.push_back(std::move(job));
      kill_handler_(std::move(bounced));
    }
    return;
  }
  queue_.push_back(std::move(job));
  if (!in_service_) begin_service();
}

void Resource::crash() {
  if (down_) return;
  down_ = true;
  down_since_ = now();
  std::vector<workload::Job> killed;
  if (in_service_) {
    sim().cancel(completion_event_);
    // begin_service charged the whole span up front; give back the part
    // that will never run, and charge the part that did run to H as
    // wasted work (like a horizon cutoff).
    const double total = control_time_ + current_service_time_;
    const double elapsed = now() - service_started_;
    busy_time_ -= std::max(0.0, total - elapsed);
    metrics_->record_job_killed(in_service_partial());
    killed.push_back(std::move(*in_service_));
    in_service_.reset();
  }
  while (!queue_.empty()) {
    metrics_->record_job_killed(0.0);
    killed.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  for (const workload::Job& job : killed) {
    metrics_->record_job_event(job.id, JobEvent::kKilled, now(), index_);
  }
  if (!killed.empty() && kill_handler_) kill_handler_(std::move(killed));
}

void Resource::recover() {
  if (!down_) return;
  down_ = false;
  downtime_ += now() - down_since_;
  recovered_pending_ = true;
}

std::optional<workload::Job> Resource::steal_queued_job() {
  if (queue_.empty()) return std::nullopt;
  workload::Job job = std::move(queue_.back());
  queue_.pop_back();
  return job;
}

void Resource::begin_service() {
  if (queue_.empty()) {
    in_service_.reset();
    return;
  }
  in_service_ = std::move(queue_.front());
  queue_.pop_front();
  metrics_->record_job_event(in_service_->id, JobEvent::kStart, now(), index_);
  service_started_ = now();
  current_service_time_ = in_service_->exec_time / service_rate_;
  // Job-control (launch/teardown) is RP overhead H, modeled as a setup
  // phase that also occupies the resource.
  const double total = control_time_ + current_service_time_;
  busy_time_ += total;
  completion_event_ = sim().schedule_in(total, [this]() {
    ++executed_;
    metrics_->record_job_event(in_service_->id, JobEvent::kComplete, now(),
                               index_);
    metrics_->record_completion(*in_service_, now(), current_service_time_,
                                control_time_);
    in_service_.reset();
    begin_service();
  });
}

void Resource::start_reporting(double interval, double offset,
                               bool suppression, double max_silence) {
  if (!(interval > 0.0) || offset < 0.0 || max_silence < 0.0) {
    throw std::invalid_argument("Resource: bad reporting parameters");
  }
  report_interval_ = interval;
  suppression_ = suppression;
  max_silence_ = max_silence;
  sim().schedule_in(offset, [this]() { report_now(); });
}

void Resource::report_now() {
  if (down_) {
    // Fail-silent: a dead node sends nothing.  The reporting timer keeps
    // ticking so reporting resumes by itself on recovery.
    sim().schedule_in(report_interval_, [this]() { report_now(); });
    return;
  }
  const double current = load();
  const bool heartbeat_due =
      max_silence_ > 0.0 && now() - last_sent_ >= max_silence_;
  const bool unchanged = reported_once_ && current == last_reported_load_ &&
                         !recovered_pending_;
  if (suppression_ && unchanged && !heartbeat_due) {
    metrics_->count_update_suppressed();
  } else {
    StatusUpdate update;
    update.cluster = cluster_;
    update.resource = index_;
    update.load = current;
    update.busy = busy();
    update.recovered = recovered_pending_;
    update.stamp = now();
    last_reported_load_ = current;
    reported_once_ = true;
    recovered_pending_ = false;
    last_sent_ = now();
    report_(update);
  }
  sim().schedule_in(report_interval_, [this]() { report_now(); });
}

void Resource::set_service_rate(double service_rate,
                                double job_control_demand) {
  if (!(service_rate > 0.0)) {
    throw std::invalid_argument("Resource: service rate must be positive");
  }
  service_rate_ = service_rate;
  control_time_ = job_control_demand / service_rate;
}

void Resource::reset() {
  queue_.clear();
  in_service_.reset();
  service_started_ = 0.0;
  current_service_time_ = 0.0;
  completion_event_ = 0;
  report_interval_ = 0.0;
  suppression_ = true;
  reported_once_ = false;
  last_reported_load_ = -1.0;
  max_silence_ = 0.0;
  last_sent_ = 0.0;
  down_ = false;
  recovered_pending_ = false;
  down_since_ = 0.0;
  downtime_ = 0.0;
  kill_handler_ = nullptr;
  executed_ = 0;
  busy_time_ = 0.0;
}

}  // namespace scal::grid
