#pragma once
// Collection of the quantities the scalability framework consumes:
//   F(k) — useful work: resource service time of jobs that completed
//          within their benefit deadline U_b,
//   G(k) — RMS overhead: work offered to scheduler/estimator/middleware
//          servers (equals their busy time whenever the RMS keeps up;
//          exceeds it exactly when the RMS is the bottleneck),
//   H(k) — RP overhead: job-control costs plus service time wasted on
//          jobs that missed their deadline or were cut off at the horizon,
// plus the secondary measures of Figures 6 and 7 (throughput, response
// time) and protocol-level counters for tests and diagnostics.

#include <cstddef>
#include <cstdint>

#include "grid/joblog.hpp"
#include "grid/result_sink.hpp"
#include "sim/time.hpp"
#include "util/stats.hpp"
#include "workload/job.hpp"
#include "workload/trace.hpp"

namespace scal::obs {
class Telemetry;
class Histogram;
}

namespace scal::grid {

/// Value snapshot of every MetricsCollector counter, so probes and
/// exporters can read a consistent mid-run view without reaching into
/// the collector's internals.
struct MetricsSnapshot {
  double useful_work = 0.0;
  double wasted_work = 0.0;
  double control_overhead = 0.0;
  std::uint64_t jobs_arrived = 0;
  std::uint64_t jobs_local = 0;
  std::uint64_t jobs_remote = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_succeeded = 0;
  std::uint64_t jobs_missed_deadline = 0;
  std::uint64_t jobs_unfinished = 0;
  std::uint64_t polls = 0;
  std::uint64_t transfers = 0;
  std::uint64_t auctions = 0;
  std::uint64_t adverts = 0;
  std::uint64_t updates_received = 0;
  std::uint64_t updates_suppressed = 0;
  // Fault subsystem (all zero on a fault-free run).
  std::uint64_t jobs_killed = 0;
  std::uint64_t jobs_requeued = 0;
  std::uint64_t jobs_lost = 0;
  std::uint64_t round_retries = 0;
  std::uint64_t status_evictions = 0;
  std::uint64_t blackout_drops = 0;
};

class MetricsCollector {
 public:
  MetricsCollector() = default;
  // The default sink is embedded (sink_ points into *this), so copies
  // and moves would alias the wrong sink; the collector is shared by
  // reference everywhere anyway.
  MetricsCollector(const MetricsCollector&) = delete;
  MetricsCollector& operator=(const MetricsCollector&) = delete;

  /// Attach the result sink (GridConfig::result_mode selects the
  /// implementation).  Non-owning; null restores the embedded full
  /// sink.  A standalone collector (tests, per-task shards) works
  /// without ever attaching one.
  void attach_sink(ResultSink* sink) noexcept {
    sink_ = sink != nullptr ? sink : &default_sink_;
  }
  ResultSink& sink() noexcept { return *sink_; }
  const ResultSink& sink() const noexcept { return *sink_; }

  /// Legacy shim: override the lifecycle log destination with an
  /// external log.  New code records through record_job_event and reads
  /// the sink's log; attaching is only kept for standalone collectors.
  void attach_job_log(JobLog* log) noexcept { external_log_ = log; }
  /// The lifecycle log events flow into: the attached override, or the
  /// sink's own log.  Never null.
  JobLog* job_log() noexcept {
    return external_log_ != nullptr ? external_log_ : &sink_->log();
  }

  /// Record one job-lifecycle event.  The single mutation path into the
  /// log — components call this instead of writing job_log() directly,
  /// so the sink can bound or redirect the storage.
  void record_job_event(workload::JobId job, JobEvent event, sim::Time at,
                        std::uint32_t place = 0) {
    job_log()->record(job, event, at, place);
  }

  /// Attach (optional) distribution probes; any pointer may be null.
  /// wait/response/slowdown fold online at record_completion; queue
  /// depth and staleness are fed by the scheduler via the observe_*
  /// hooks below.  Purely observational: attaching probes changes no
  /// simulated behavior.
  void attach_probes(obs::Histogram* wait, obs::Histogram* response,
                     obs::Histogram* slowdown, obs::Histogram* queue_depth,
                     obs::Histogram* staleness) noexcept {
    wait_hist_ = wait;
    response_hist_ = response;
    slowdown_hist_ = slowdown;
    queue_depth_hist_ = queue_depth;
    staleness_hist_ = staleness;
  }
  /// Scheduler queue length observed at a scheduling decision point.
  void observe_decision_queue(std::size_t depth);
  /// Sim-time age of the status snapshot a dispatch decision used.
  void observe_staleness(double age);
  void record_arrival(const workload::Job& job);
  /// `service_time` is the time the resource actually spent (exec/rate).
  void record_completion(const workload::Job& job, sim::Time completion,
                         double service_time, double control_cost);
  /// Service time already spent on a job still running at the horizon.
  void record_unfinished(double partial_service_time);
  /// A resource crash killed this job; any service time already invested
  /// is wasted (charged to H) exactly like a horizon cutoff.
  void record_job_killed(double partial_service_time);

  // Protocol counters (incremented by the RMS implementations).
  void count_poll() { ++polls_; }
  void count_transfer() { ++transfers_; }
  void count_auction() { ++auctions_; }
  void count_advert() { ++adverts_; }
  void count_update_received() { ++updates_received_; }
  void count_update_suppressed() { ++updates_suppressed_; }

  // Fault/robustness counters (see docs/FAULTS.md).
  void count_job_requeued() { ++requeued_; }
  void count_job_lost() { ++lost_; }
  void count_round_retry() { ++round_retries_; }
  void count_status_evictions(std::uint64_t n) { status_evictions_ += n; }
  void count_blackout_drop() { ++blackout_drops_; }

  // Accessors (F/H here exclude G, which GridSystem reads off servers).
  double useful_work() const noexcept { return useful_work_; }
  double wasted_work() const noexcept { return wasted_work_; }
  double control_overhead() const noexcept { return control_overhead_; }

  std::uint64_t jobs_arrived() const noexcept { return arrived_; }
  std::uint64_t jobs_local() const noexcept { return local_; }
  std::uint64_t jobs_remote() const noexcept { return remote_; }
  std::uint64_t jobs_completed() const noexcept { return completed_; }
  std::uint64_t jobs_succeeded() const noexcept { return succeeded_; }
  std::uint64_t jobs_missed_deadline() const noexcept { return missed_; }
  std::uint64_t jobs_unfinished() const noexcept { return unfinished_; }

  std::uint64_t polls() const noexcept { return polls_; }
  std::uint64_t transfers() const noexcept { return transfers_; }
  std::uint64_t auctions() const noexcept { return auctions_; }
  std::uint64_t adverts() const noexcept { return adverts_; }
  std::uint64_t updates_received() const noexcept { return updates_received_; }
  std::uint64_t updates_suppressed() const noexcept {
    return updates_suppressed_;
  }
  std::uint64_t jobs_killed() const noexcept { return killed_; }
  std::uint64_t jobs_requeued() const noexcept { return requeued_; }
  std::uint64_t jobs_lost() const noexcept { return lost_; }
  std::uint64_t round_retries() const noexcept { return round_retries_; }
  std::uint64_t status_evictions() const noexcept { return status_evictions_; }
  std::uint64_t blackout_drops() const noexcept { return blackout_drops_; }

  /// The exact response-time samples (full mode only; throws
  /// std::logic_error when the attached sink folds online — use
  /// response_mean()/response_p95() there).
  const util::Samples& response_times() const;
  std::uint64_t response_count() const noexcept {
    return sink_->response_count();
  }
  /// Mean response time — bitwise identical across sink modes (both
  /// fold a 0.0-seeded sum in completion order).
  double response_mean() const { return sink_->response_mean(); }
  /// 95th-percentile response: exact in full mode, HDR-histogram
  /// approximate in streaming mode.
  double response_p95() const { return sink_->response_p95(); }

  /// Consistent value copy of all counters (valid mid-run).
  MetricsSnapshot snapshot() const noexcept;

  /// Fold another collector's counts into this one: sums every counter
  /// and appends the response samples in `other`'s order.  Merging
  /// per-task collectors in task order equals accumulating serially —
  /// the deterministic reduction for sharded/parallel collection.  The
  /// attached job logs are not merged.
  void merge(const MetricsCollector& other);

  /// Zero every counter and drop the response samples; the attached job
  /// log (if any) is left untouched.
  void reset();

 private:
  double useful_work_ = 0.0;
  double wasted_work_ = 0.0;
  double control_overhead_ = 0.0;
  std::uint64_t arrived_ = 0, local_ = 0, remote_ = 0;
  std::uint64_t completed_ = 0, succeeded_ = 0, missed_ = 0, unfinished_ = 0;
  std::uint64_t polls_ = 0, transfers_ = 0, auctions_ = 0, adverts_ = 0;
  std::uint64_t updates_received_ = 0, updates_suppressed_ = 0;
  std::uint64_t killed_ = 0, requeued_ = 0, lost_ = 0;
  std::uint64_t round_retries_ = 0, status_evictions_ = 0, blackout_drops_ = 0;
  FullResultSink default_sink_;
  ResultSink* sink_ = &default_sink_;
  JobLog* external_log_ = nullptr;
  obs::Histogram* wait_hist_ = nullptr;
  obs::Histogram* response_hist_ = nullptr;
  obs::Histogram* slowdown_hist_ = nullptr;
  obs::Histogram* queue_depth_hist_ = nullptr;
  obs::Histogram* staleness_hist_ = nullptr;
};

/// Final outcome of one simulation run.
struct SimulationResult {
  // The paper's three work terms.
  double F = 0.0;
  double G_scheduler = 0.0;
  double G_estimator = 0.0;
  double G_middleware = 0.0;
  /// Control-plane aggregation-tree work (0 when the control plane is
  /// off or bypassed; docs/CONTROL_PLANE.md).  Charged to G like every
  /// other RMS server: the tree must pay for itself in coalesced
  /// est/sched work, not hide its own cost.
  double G_aggregator = 0.0;
  double H_control = 0.0;
  double H_wasted = 0.0;

  double G() const noexcept {
    return G_scheduler + G_estimator + G_middleware + G_aggregator;
  }

  /// Bottleneck isolation (the paper's motivation for component-level
  /// scalability analysis): the largest single scheduler's share of
  /// G_scheduler.  1.0 for CENTRAL by construction; ~1/#clusters for a
  /// well-balanced distributed RMS; rising values pinpoint an emerging
  /// manager hot spot.
  double G_scheduler_max_share = 0.0;
  /// The busiest scheduler's own work-in-system time.
  double G_scheduler_max = 0.0;
  double H() const noexcept { return H_control + H_wasted; }
  /// E = F / (F + G + H); 0 when no work was done.
  double efficiency() const noexcept {
    const double total = F + G() + H();
    return total > 0.0 ? F / total : 0.0;
  }

  // Figure 6/7 measures.
  double throughput = 0.0;  ///< jobs completed per unit time
  double mean_response = 0.0;
  double p95_response = 0.0;

  // Bookkeeping.
  std::uint64_t jobs_arrived = 0;
  std::uint64_t jobs_local = 0;
  std::uint64_t jobs_remote = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_succeeded = 0;
  std::uint64_t jobs_missed_deadline = 0;
  std::uint64_t jobs_unfinished = 0;
  std::uint64_t polls = 0;
  std::uint64_t transfers = 0;
  std::uint64_t auctions = 0;
  std::uint64_t adverts = 0;
  std::uint64_t updates_received = 0;
  std::uint64_t updates_suppressed = 0;
  std::uint64_t network_messages = 0;
  std::uint64_t messages_dropped = 0;  ///< failure injection casualties
  std::uint64_t events_dispatched = 0;
  double horizon = 0.0;

  // Control-plane aggregation (all zero when off or bypassed).
  std::uint64_t ctrl_updates_in = 0;        ///< updates entering the trees
  std::uint64_t ctrl_updates_coalesced = 0; ///< absorbed before forwarding
  std::uint64_t ctrl_batches = 0;           ///< batches shipped tree-hops
  std::uint64_t ctrl_tree_depth = 0;        ///< deepest tree in the forest
  /// Fraction of tree traffic absorbed by coalescing (the G-reduction
  /// mechanism's direct readout).
  double ctrl_coalescing_ratio() const noexcept {
    return ctrl_updates_in > 0
               ? static_cast<double>(ctrl_updates_coalesced) /
                     static_cast<double>(ctrl_updates_in)
               : 0.0;
  }

  // Fault subsystem (zero / 1.0 on a fault-free run; see docs/FAULTS.md).
  std::uint64_t resource_crashes = 0;
  std::uint64_t resource_recoveries = 0;
  std::uint64_t jobs_killed = 0;    ///< in-flight jobs a crash destroyed
  std::uint64_t jobs_requeued = 0;  ///< killed jobs re-entering a scheduler
  std::uint64_t jobs_lost = 0;      ///< killed jobs past the requeue budget
  std::uint64_t round_retries = 0;  ///< protocol rounds retried on timeout
  std::uint64_t status_evictions = 0;  ///< stale views skipped in scans
  std::uint64_t blackout_drops = 0;    ///< control work lost to blackouts
  std::uint64_t aggregator_blackouts = 0;  ///< agg-blackout windows opened
  std::uint64_t messages_delayed = 0;
  std::uint64_t messages_duplicated = 0;
  double resource_downtime = 0.0;  ///< summed down-state resource-time
  /// Fraction of resource-time actually up: 1 - downtime / (R * horizon).
  double availability = 1.0;
  /// Availability-adjusted efficiency E_A = E / A: efficiency per unit of
  /// capacity that actually existed, so churn runs compare to fault-free
  /// runs on equal footing (can exceed E when the RMS exploits the
  /// surviving capacity well).
  double efficiency_avail() const noexcept {
    return availability > 0.0 ? efficiency() / availability : 0.0;
  }

  // Workload provenance (src/workload source subsystem): summary stats
  // of the arrival stream the run consumed, and whether the process-wide
  // ArrivalCache already held it (docs/WORKLOADS.md).
  workload::TraceStats workload_stats;
  bool workload_from_cache = false;

  // Memory tier (docs/PERFORMANCE.md): which result path the run used
  // and what its bounded stores did.  All defaults on a full-mode run
  // with the job log off — the common case stays indistinguishable from
  // the pre-streaming seed.
  ResultMode result_mode = ResultMode::kFull;
  std::uint64_t job_log_records = 0;  ///< lifecycle records kept
  std::uint64_t job_log_dropped = 0;  ///< records past the capacity bound
  std::uint64_t arena_high_water = 0;  ///< peak in-flight arrival slots
  std::uint64_t arena_reuses = 0;      ///< arrival slot recycles
  std::uint64_t arrival_cache_evictions = 0;  ///< byte-budget FIFO evictions
  std::uint64_t arrival_cache_store_skips = 0;  ///< one-shot stores skipped

  /// The telemetry handle the run was instrumented with (null when
  /// telemetry was off); points at the object the caller attached to
  /// GridConfig::telemetry, so `result.telemetry->export_all()` works
  /// even through convenience wrappers like rms::simulate.
  obs::Telemetry* telemetry = nullptr;
};

}  // namespace scal::grid
