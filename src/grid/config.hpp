#pragma once
// Configuration of a managed-grid simulation: topology sizing, cluster
// layout, the RMS policy under test, the paper's common constants
// (Table 1), the cost model that defines what one unit of RMS work is,
// and the tunable "scaling enablers" (Tables 2-5).

#include <cstdint>
#include <string>

#include "fault/plan.hpp"
#include "grid/result_mode.hpp"
#include "net/topology.hpp"
#include "workload/generator.hpp"
#include "workload/source.hpp"

namespace scal::obs {
class Telemetry;
}

namespace scal::grid {

/// The seven RMS models evaluated in the paper (Section 3.3), plus the
/// two-level hierarchical extension (the paper's future-work item (a);
/// not part of the reproduction sweeps).
enum class RmsKind {
  kCentral,
  kLowest,
  kReserve,
  kAuction,
  kSenderInitiated,    // S-I
  kReceiverInitiated,  // R-I
  kSymmetric,          // Sy-I
  kHierarchical,       // HIER (extension)
  kRandom,             // RANDOM (Zhou'88 no-information baseline)
};

std::string to_string(RmsKind kind);
RmsKind rms_from_string(const std::string& name);

/// All seven kinds in paper order, for sweeps.
inline constexpr RmsKind kAllRmsKinds[] = {
    RmsKind::kCentral,          RmsKind::kLowest,
    RmsKind::kReserve,          RmsKind::kAuction,
    RmsKind::kSenderInitiated,  RmsKind::kReceiverInitiated,
    RmsKind::kSymmetric,
};

/// Scaling enablers (the y(k) knobs the simulated-annealing tuner adjusts,
/// paper Tables 2-5).
struct Tuning {
  /// Status-update interval tau (time units) between resource reports.
  double update_interval = 20.0;
  /// Neighborhood set size L_p: remote schedulers probed / polled /
  /// advertised to.  Case 4 turns this into the scaling variable.
  std::uint32_t neighborhood_size = 3;
  /// Network link delay multiplier (provisioning of control links).
  double link_delay_scale = 1.0;
  /// Interval between receiver-initiated volunteering rounds (R-I, Sy-I;
  /// enabler in Case 4).
  double volunteer_interval = 60.0;

  // Control-plane aggregation enablers (docs/CONTROL_PLANE.md; only
  // meaningful when GridConfig::control_plane is on).  The degenerate
  // triple — fanout 1, batch 1, flush 0 — bypasses the tree entirely
  // and reproduces the point-to-point status path byte-for-byte.
  /// Fan-out degree of the per-(cluster, estimator) aggregation tree.
  std::uint32_t agg_fanout = 1;
  /// Updates buffered per aggregator before a batch is forced out.
  std::uint32_t agg_batch = 1;
  /// Max hold time (time units) before a partial batch is flushed;
  /// <= 0 forwards immediately after processing.
  double agg_flush = 0.0;

  /// True when the aggregation knobs are at the bypass point.
  bool aggregation_degenerate() const noexcept {
    return agg_fanout <= 1 && agg_batch <= 1 && agg_flush <= 0.0;
  }
};

/// Service costs (time units of RMS server work) that define G(k), plus
/// message sizes that drive network transfer delays.  G(k) is "the
/// overall time spent by the schedulers for scheduling, receiving, and
/// processing updates" — each constant below is one of those actions.
struct CostModel {
  // Estimator-side costs.
  double est_process_update = 0.01;  ///< vet one resource status report
  double est_forward_batch = 0.03;   ///< assemble + send one batch upstream

  // Scheduler-side costs.
  double sched_batch_base = 0.03;      ///< receive one status batch
  double sched_per_update = 0.01;      ///< integrate one update from a batch
  double sched_decision_base = 0.015;  ///< one placement decision
  double sched_decision_per_candidate = 2e-5;  ///< per resource tracked
  double sched_poll = 0.05;      ///< handle one poll request or reply
  double sched_transfer = 0.06;  ///< hand a job off / accept a handoff
  double sched_advert = 0.03;    ///< reservation / volunteer / invitation
  double sched_bid = 0.12;       ///< produce or evaluate one auction bid
  double sched_idle_event = 0.05;  ///< digest an idle notification

  // Middleware per-message service time (S-I / R-I / Sy-I, paper: "a
  // simple queue with infinite capacity and finite but small service
  // time").
  double middleware_service = 0.005;

  // Control-plane aggregator costs (docs/CONTROL_PLANE.md).  An
  // aggregator is a thin forwarding daemon, deliberately cheaper than
  // the estimator's vetting: aggregation pays off exactly when the
  // coalesced volume saves more est/sched per-update work than the
  // tree's own processing adds.  Charged to G via G_aggregator.
  double ctrl_process_update = 0.002;  ///< coalesce one update at a hop
  double ctrl_forward_batch = 0.01;    ///< ship one batch one hop up

  // Resource-pool overheads H(k): job control (launch/teardown), in
  // demand units — it is processing work, so its wall-clock cost is
  // job_control / service_rate and scales with the pool speed exactly
  // like the jobs themselves (keeps Case 2's efficiency band holdable).
  double job_control = 4.0;

  // Message sizes (arbitrary size units; links default to bandwidth 100).
  double size_update = 1.0;
  double size_control = 1.0;  ///< polls, bids, advertisements, replies
  double size_job = 8.0;      ///< job transfer payload
};

/// Protocol constants from the paper.
struct ProtocolParams {
  double t_cpu = 700.0;  ///< LOCAL/REMOTE execution-time threshold (Table 1)
  double t_l = 0.5;      ///< threshold load at a scheduler (Table 1)
  double delta = 0.5;    ///< R-I: RUS threshold for volunteering
  double psi = 25.0;     ///< S-I: ATT tie tolerance
  double auction_window = 4.0;   ///< bid accumulation interval
  double advert_ttl_factor = 2.0;  ///< Sy-I advert freshness, x volunteer_interval
  double estimator_batch_window = 4.0;  ///< update batching at estimators
  double wait_queue_timeout = 60.0;     ///< R-I/Sy-I parked-job fallback
  /// Watchdog for request/reply rounds (polls, probes, demand
  /// negotiations): if replies have not arrived by then — lost control
  /// messages under failure injection, or a slow path — the round
  /// concludes with whatever it has and the job is placed locally.
  double reply_timeout = 40.0;
};

struct GridConfig {
  net::TopologyConfig topology;  ///< node count = schedulers+estimators+resources

  /// Target nodes per cluster (1 scheduler + estimators + resources).
  std::size_t cluster_size = 20;
  /// Estimators per cluster (Case 3 scaling variable).
  std::size_t estimators_per_cluster = 1;

  /// Resource service rate in demand units per time unit (Case 2
  /// scaling variable).  The default of 8 makes the mean job run for
  /// ~75 time units, so a 1500-unit horizon spans ~20 job generations
  /// and queueing dynamics settle well inside it.
  double service_rate = 8.0;

  /// Heterogeneity extension (the paper assumes homogeneous resources):
  /// each resource's rate is service_rate x Uniform[1-h, 1+h].  The
  /// schedulers keep estimating with the nominal rate, so their load
  /// views degrade gracefully — exactly the stress a real grid applies.
  double heterogeneity = 0.0;  ///< h in [0, 0.9]

  RmsKind rms = RmsKind::kLowest;

  /// Control-plane extension (src/ctrl): overlay a fan-out aggregation
  /// tree per (cluster, estimator) on the status-update path, with the
  /// Tuning::agg_* knobs as tunable enablers.  Structural: toggling it
  /// changes the entity arena, so it never survives a reset.  Off by
  /// default — and with the knobs at their degenerate defaults the
  /// report path bypasses the tree, so an enabled-but-degenerate run is
  /// bit-identical to this flag being off.
  bool control_plane = false;

  Tuning tuning;
  CostModel costs;
  ProtocolParams protocol;
  workload::WorkloadConfig workload;

  /// Where arrivals come from (docs/WORKLOADS.md): the synthetic
  /// generator (default — byte-identical to the pre-source-layer
  /// seed path), a saved CSV trace, or a Standard Workload Format log,
  /// optionally wrapped in composable load modulators.  Mutually
  /// exclusive with the legacy trace_path shorthand below.
  workload::SourceSpec workload_source;

  std::uint64_t seed = 42;
  double horizon = 1500.0;  ///< simulated time units

  /// Failure injection: probability that any single *control* message
  /// (polls, replies, updates, adverts, bids) is silently dropped.
  /// Job transfers stay reliable (they carry state that must not be
  /// lost).  Protocols recover via reply_timeout watchdogs.
  double control_loss_probability = 0.0;

  /// Fault-injection schedule (src/fault).  Inert by default; when any
  /// class is active GridSystem instantiates a FaultInjector, switches
  /// on the robustness mixin in every scheduler, and exports the fault
  /// counters and availability-adjusted efficiency.  All fault draws
  /// come from dedicated substreams, so a plan with any() == false is
  /// bit-identical to a build without the subsystem.
  fault::FaultPlan faults;

  /// When > 0, a StateSampler records true system state (utilization,
  /// backlogs) on this cadence; read via GridSystem::sampler().
  double sample_interval = 0.0;

  /// Record per-job lifecycle events (arrival, transfers, dispatch,
  /// start, completion) for post-run analysis.  Off by default: the
  /// figure sweeps do not need it and it costs memory per job.
  bool job_log = false;

  /// Bound on job-log records (0 = unbounded).  At million-job scale an
  /// unbounded log defeats the streaming tier, so scale runs either
  /// leave job_log off or cap it; records past the cap are counted, not
  /// stored.
  std::size_t job_log_capacity = 0;

  /// How per-job results accumulate (docs/PERFORMANCE.md memory tiers).
  /// kFull (default) keeps the exact response samples and is
  /// byte-identical to the pre-streaming seed path.  kStreaming folds
  /// everything online and pulls arrivals through the JobStream
  /// interface, making per-job memory O(1): F/G/H, every counter, and
  /// the mean response are bit-identical to kFull; only p95_response
  /// switches to the HDR-histogram approximation.  Structural (selects
  /// the sink and the arrival path), so it never survives a reset.
  ResultMode result_mode = ResultMode::kFull;

  /// When non-empty, jobs are replayed from this trace file (see
  /// workload::save_trace_file) instead of being generated; arrivals
  /// past the horizon are dropped and origin clusters are remapped
  /// modulo the cluster count.
  std::string trace_path;

  /// Suppress a periodic update when the integer load is unchanged
  /// (paper: "if loading conditions ... did not change significantly from
  /// the previous update, an update might be suppressed").
  bool update_suppression = true;

  /// Share settled router source trees across systems on the same
  /// topology via the process-wide net::SharedTreeCache (keyed on
  /// net::graph_digest).  Purely a wall-clock optimization — adopted
  /// trees return bit-identical routes — so, like `telemetry`, the
  /// flag is EXCLUDED from grid::config_digest and never perturbs
  /// EvalCache keys or reset compatibility.  Off by default; the
  /// reusable-session backend (rms::SimulationSession) turns it on for
  /// its rebuilds, where sibling slots route over identical graphs.
  bool share_router_trees = false;

  /// Run telemetry handle (non-owning; null = telemetry off, the
  /// default).  When set, the system threads it through the simulator,
  /// the servers, and the metrics assembly: sim-time tracing, the
  /// time-series probe, and the run manifest all record into it.  One
  /// handle describes one instrumented run — the enabler tuner strips it
  /// from candidate configs so search evaluations stay silent.
  obs::Telemetry* telemetry = nullptr;

  /// Validate invariants; throws std::invalid_argument on nonsense.
  void validate() const;

  /// Number of clusters implied by topology.nodes and cluster_size.
  std::size_t cluster_count() const;
};

}  // namespace scal::grid
