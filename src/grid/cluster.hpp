#pragma once
// Partitioning of the topology into non-overlapping clusters (paper
// Section 3.1: "the set of resources are separated into non-overlapping
// clusters and each cluster is coordinated by a scheduler").
//
// We grow clusters by multi-source BFS from spread-out seed nodes so
// clusters are graph-contiguous (low intra-cluster latency) and balanced
// in size.  Within each cluster, the highest-degree node hosts the
// scheduler, the next `estimators` nodes host estimators, and the rest
// are resources.

#include <cstdint>
#include <vector>

#include "net/graph.hpp"
#include "util/rng.hpp"

namespace scal::grid {

struct ClusterLayout {
  /// For each cluster: member graph nodes, first entry is the scheduler
  /// node, the next `estimator_count` are estimator nodes, the rest are
  /// resource nodes.
  struct Cluster {
    net::NodeId scheduler_node = net::kInvalidNode;
    std::vector<net::NodeId> estimator_nodes;
    std::vector<net::NodeId> resource_nodes;
  };
  std::vector<Cluster> clusters;
  /// node -> cluster index.
  std::vector<std::uint32_t> cluster_of;

  std::size_t total_resources() const;
  std::size_t total_estimators() const;
};

/// Partition `graph` into `cluster_count` contiguous, balanced clusters
/// and assign roles.  Requires the graph to be connected and each
/// cluster to have room for scheduler + estimators + >= 1 resource.
ClusterLayout partition_into_clusters(const net::Graph& graph,
                                      std::size_t cluster_count,
                                      std::size_t estimators_per_cluster,
                                      util::RandomStream& rng);

}  // namespace scal::grid
