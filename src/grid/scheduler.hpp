#pragma once
// Base class for the seven RMS policies.  A scheduler is a FIFO server:
// every action — making a placement decision, digesting a status batch,
// handling a protocol message — is a costed work item, and the sum of
// the costs offered to all schedulers is the dominant part of the RMS
// overhead G(k).
//
// The base class owns the status tables (per-cluster resource load
// views built from estimator batches), the dispatch/transfer plumbing,
// and the messaging helpers; subclasses in src/rms implement the seven
// protocols by overriding the handle_* hooks.

#include <cstdint>
#include <vector>

#include "grid/messages.hpp"
#include "net/graph.hpp"
#include "obs/phase_profiler.hpp"
#include "sim/server.hpp"
#include "util/rng.hpp"

namespace scal::grid {

class GridSystem;

/// A scheduler's view of one resource, built from status updates.
struct ResourceView {
  double load = 0.0;
  sim::Time stamp = 0.0;
};

class SchedulerBase : public sim::Server {
 public:
  SchedulerBase(GridSystem& system, sim::EntityId id, ClusterId cluster,
                net::NodeId node);

  // -- Entry points invoked by the system / network (delays already paid).

  /// A freshly submitted job reaches this scheduler; queues the decision
  /// work item, then the policy's handle_job runs.
  void deliver_job(workload::Job job);

  /// A status batch from one of this scheduler's estimators.
  void deliver_batch(StatusBatch batch);

  /// An inter-scheduler protocol message.
  void deliver_message(RmsMessage msg);

  /// Policy initialization hook (periodic timers etc.).  Called once
  /// before the simulation starts.
  virtual void on_start() {}

  /// Jobs parked inside the policy (pending polls, wait queues) at the
  /// horizon; counted as unfinished.
  virtual std::size_t parked_jobs() const;

  ClusterId cluster() const noexcept { return cluster_; }
  net::NodeId node() const noexcept { return node_; }

  /// True for the superscheduler family (S-I, R-I, Sy-I): all
  /// inter-scheduler traffic is relayed through the grid middleware.
  virtual bool uses_middleware() const { return false; }

  /// True for policies that react to idle-resource events surfaced by
  /// the status stream (AUCTION, Sy-I).
  virtual bool wants_idle_events() const { return false; }

  // -- Robustness mixin (fault subsystem; inert unless enabled).

  /// Switch on the shared robustness behavior every policy inherits:
  /// table entries older than `staleness_window` are evicted from
  /// placement scans, zero-reply protocol rounds retry up to
  /// `retry_budget` times with exponential backoff, and crash-killed
  /// jobs requeue through deliver_requeue at most `requeue_budget`
  /// times.  GridSystem calls this for every scheduler whenever the
  /// run's FaultPlan is active.
  void enable_robustness(double staleness_window, std::uint32_t requeue_budget,
                         std::uint32_t retry_budget,
                         double retry_backoff_base);
  bool robust() const noexcept { return staleness_window_ > 0.0; }

  /// Fault injection: while blacked out, status batches and job-free
  /// protocol messages are dropped on arrival (counted); job-carrying
  /// messages and fresh submissions still queue, so jobs conserve.
  void set_blackout(bool down) { blackout_ = down; }
  bool blacked_out() const noexcept { return blackout_; }

  /// A crash-killed job re-enters this scheduler (network hop already
  /// paid).  Spends one unit of the job's requeue budget; over budget
  /// the job is lost (counted).  The repeat decision work and transfer
  /// traffic are charged to G like any first attempt.
  void deliver_requeue(workload::Job job);

  /// Rewind to the just-constructed state (reusable-system path): the
  /// server counters, status tables, RNG stream, token counter, and the
  /// robustness/blackout mixin state all return to their post-wiring
  /// values; policy subclasses drop their protocol state via on_reset().
  /// The system re-enables robustness afterwards when faults are active.
  void reset();

 protected:
  /// Policy hook invoked by reset(): clear protocol state (pending
  /// polls, wait queues, advert caches, ...).  Default: nothing.
  virtual void on_reset() {}

  // -- Hooks the seven policies implement.
  virtual void handle_job(workload::Job job) = 0;
  virtual void handle_message(const RmsMessage& msg);
  /// Called after a batch is folded into the tables.
  virtual void after_batch(const StatusBatch& /*batch*/) {}
  /// Called (if wants_idle_events) when a batch from estimator
  /// `estimator` shows a resource going idle.
  virtual void handle_idle_resource(ResourceIndex /*resource*/,
                                    std::uint32_t /*estimator*/) {}

  // -- Helpers available to policies.

  GridSystem& system() noexcept { return *system_; }
  const GridSystem& system() const noexcept { return *system_; }
  util::RandomStream& rng() noexcept { return rng_; }

  /// The status table for `cluster` (CENTRAL tracks all clusters; the
  /// distributed policies track only their own).
  const std::vector<ResourceView>& table(ClusterId cluster) const;
  bool tracks(ClusterId cluster) const;

  /// Index of the least-loaded resource in `cluster`'s table
  /// (ties break to the lowest index).
  ResourceIndex least_loaded(ClusterId cluster) const;
  /// Load of that resource.
  double least_load(ClusterId cluster) const;
  /// Fraction of `cluster`'s resources with load >= 1 — the paper's
  /// "average cluster load" compared against T_l = 0.5.
  double busy_fraction(ClusterId cluster) const;
  /// Most-loaded resource with at least one *queued* job (load >= 2),
  /// or kNoResource when none.
  static constexpr ResourceIndex kNoResource = ~ResourceIndex{0};
  ResourceIndex most_backlogged(ClusterId cluster) const;

  /// Dispatch `job` onto resource `r` of this scheduler's own cluster
  /// (or any tracked cluster for CENTRAL): pays the network hop and
  /// optimistically bumps the table entry.
  void dispatch(ClusterId cluster, ResourceIndex r, workload::Job job);

  /// Send a protocol message to another scheduler, paying the send-side
  /// work `send_cost` and routing via the middleware when the policy
  /// uses it.
  void send_message(ClusterId dst, RmsMessage msg, double send_cost);

  /// `count` distinct random peer clusters (never this one).
  std::vector<ClusterId> random_peers(std::size_t count);

  /// Estimated waiting + run time ("ATT" ingredients) for a job of the
  /// given demand on this scheduler's least-loaded local resource.
  double estimate_awt(ClusterId cluster) const;
  double estimate_ert(double exec_demand) const;

  /// Predicted one-way job-transfer delay to a peer's scheduler node.
  double predict_transfer_delay(ClusterId dst) const;

  /// Fresh correlation token.
  std::uint64_t next_token() noexcept { return token_counter_++; }

  /// Robustness: is this table entry fresh enough to act on?  Always
  /// true when the mixin is off.
  bool view_usable(const ResourceView& v) const noexcept {
    return staleness_window_ <= 0.0 || now() - v.stamp <= staleness_window_;
  }
  double staleness_window() const noexcept { return staleness_window_; }
  /// True while `attempt` retries have not exhausted the retry budget.
  bool should_retry(std::uint32_t attempt) const noexcept {
    return staleness_window_ > 0.0 && attempt < retry_budget_;
  }
  /// Backoff before retry number `attempt` + 1: base * 2^attempt.
  double retry_backoff(std::uint32_t attempt) const noexcept {
    return retry_backoff_base_ * static_cast<double>(1u << attempt);
  }

 public:
  /// Called once by GridSystem during wiring: seed the status tables for
  /// the clusters this scheduler tracks.
  void init_tables(const std::vector<ClusterId>& clusters);

  /// Attach the (optional) phase profiler: scheduling decisions and
  /// status-batch folds run inside the given phases.  Purely
  /// observational — a null profiler costs one pointer test.
  void attach_profiler(obs::PhaseProfiler* profiler, obs::PhaseId decision,
                       obs::PhaseId batch) noexcept {
    profiler_ = profiler;
    decision_phase_ = decision;
    batch_phase_ = batch;
  }

 private:
  void fold_batch(const StatusBatch& batch);

  /// One tracked cluster's table.  Kept in a flat vector sorted by
  /// cluster id: the distributed policies track exactly one cluster and
  /// CENTRAL scans all of them every decision, so binary search plus
  /// contiguous iteration beats hashing on both shapes.
  struct ClusterTable {
    ClusterId cluster;
    std::vector<ResourceView> views;
  };
  std::vector<ResourceView>* find_table(ClusterId cluster);
  const std::vector<ResourceView>* find_table(ClusterId cluster) const;

  GridSystem* system_;
  ClusterId cluster_;
  net::NodeId node_;
  util::RandomStream rng_;
  std::vector<ClusterTable> tables_;  // sorted by cluster id
  std::size_t candidate_count_ = 0;   // sum of tracked table sizes
  std::uint64_t token_counter_ = 1;

  obs::PhaseProfiler* profiler_ = nullptr;
  obs::PhaseId decision_phase_ = 0;
  obs::PhaseId batch_phase_ = 0;

  // Robustness mixin state (all zero/false = mixin off).
  double staleness_window_ = 0.0;
  std::uint32_t requeue_budget_ = 0;
  std::uint32_t retry_budget_ = 0;
  double retry_backoff_base_ = 0.0;
  bool blackout_ = false;
};

}  // namespace scal::grid
