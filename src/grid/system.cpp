#include "grid/system.hpp"

#include <algorithm>
#include <stdexcept>

#include "grid/digest.hpp"
#include "grid/sampler.hpp"
#include "grid/telemetry.hpp"
#include "net/tree_cache.hpp"
#include "util/log.hpp"
#include "workload/arrival_cache.hpp"
#include "workload/source.hpp"
#include "workload/trace.hpp"

namespace scal::grid {

GridSystem::GridSystem(GridConfig config, SchedulerFactory factory)
    : config_(std::move(config)) {
  config_.validate();
  sink_ = make_result_sink(config_.result_mode);
  sink_->log().set_enabled(config_.job_log);
  sink_->log().set_capacity(config_.job_log_capacity);
  metrics_.attach_sink(sink_.get());
  if (!factory) {
    throw std::invalid_argument("GridSystem: null scheduler factory");
  }

  // Topology (Mercator substitute).
  util::RandomStream topo_rng(config_.seed, "topology");
  graph_ = net::generate_topology(config_.topology, topo_rng);
  network_ = std::make_unique<net::Network>(sim_, next_entity_id_++, graph_);
  if (config_.share_router_trees) {
    // Adopt (and publish) settled source trees process-wide; routes are
    // bit-identical, only the settling work is shared.
    network_->enable_tree_sharing(net::graph_digest(graph_));
  }
  network_->set_delay_scale(config_.tuning.link_delay_scale);
  if (config_.control_loss_probability > 0.0) {
    network_->set_loss(config_.control_loss_probability,
                       util::RandomStream(config_.seed, "control-loss"));
  }

  // Clusters.
  util::RandomStream part_rng(config_.seed, "partition");
  layout_ = partition_into_clusters(graph_, config_.cluster_count(),
                                    config_.estimators_per_cluster, part_rng);
  const std::size_t clusters = layout_.clusters.size();

  // Middleware lives on the globally best-connected node.
  net::NodeId best = 0;
  for (net::NodeId v = 1; v < graph_.node_count(); ++v) {
    if (graph_.degree(v) > graph_.degree(best)) best = v;
  }
  middleware_node_ = best;
  middleware_ = std::make_unique<Middleware>(
      sim_, next_entity_id_++, config_.costs.middleware_service);

  // Schedulers: one per cluster, or a single central one placed on the
  // best-connected scheduler slot.
  schedulers_.resize(config_.rms == RmsKind::kCentral ? 1 : clusters);
  if (config_.rms == RmsKind::kCentral) {
    net::NodeId central_node = layout_.clusters[0].scheduler_node;
    for (const auto& c : layout_.clusters) {
      if (graph_.degree(c.scheduler_node) > graph_.degree(central_node)) {
        central_node = c.scheduler_node;
      }
    }
    schedulers_[0] = factory(*this, next_entity_id_++, 0, central_node);
    std::vector<ClusterId> all(clusters);
    for (std::size_t c = 0; c < clusters; ++c) {
      all[c] = static_cast<ClusterId>(c);
    }
    schedulers_[0]->init_tables(all);
  } else {
    for (std::size_t c = 0; c < clusters; ++c) {
      schedulers_[c] =
          factory(*this, next_entity_id_++, static_cast<ClusterId>(c),
                  layout_.clusters[c].scheduler_node);
      schedulers_[c]->init_tables({static_cast<ClusterId>(c)});
    }
  }

  // Estimators forward batches to their cluster's scheduler.
  estimators_.resize(clusters);
  for (std::size_t c = 0; c < clusters; ++c) {
    const auto& cluster = layout_.clusters[c];
    estimators_[c].reserve(cluster.estimator_nodes.size());
    for (const net::NodeId est_node : cluster.estimator_nodes) {
      auto forward = [this, c, est_node](StatusBatch batch) {
        SchedulerBase& sched = scheduler_for(static_cast<ClusterId>(c));
        const double size = config_.costs.size_update *
                            static_cast<double>(batch.updates.size());
        network_->send(est_node, sched.node(), size,
                       [&sched, batch = std::move(batch)]() mutable {
                         sched.deliver_batch(std::move(batch));
                       });
      };
      estimators_[c].push_back(std::make_unique<Estimator>(
          sim_, next_entity_id_++, static_cast<ClusterId>(c),
          static_cast<std::uint32_t>(estimators_[c].size()),
          config_.costs.est_process_update, config_.costs.est_forward_batch,
          config_.protocol.estimator_batch_window, std::move(forward)));
    }
  }

  // Per-resource service rates (heterogeneity extension; h = 0 keeps
  // the paper's homogeneous pool bit-for-bit).
  util::RandomStream rate_rng(config_.seed, "heterogeneity");
  // Multipliers are recorded (build order) so a rate-only reset can
  // re-rate every resource exactly as a fresh build at the new rate
  // would — the multiplier stream never depends on the rate itself.
  auto resource_rate = [&]() {
    double mult = 1.0;
    if (config_.heterogeneity != 0.0) {
      mult = rate_rng.uniform(1.0 - config_.heterogeneity,
                              1.0 + config_.heterogeneity);
    }
    rate_multipliers_.push_back(mult);
    return config_.service_rate * mult;
  };

  // Resources report to every estimator of their cluster: the
  // estimators are replicated status services ("receive the status
  // updates from RP resources and distribute to the scheduling decision
  // makers"), so scaling the estimator count (Case 3) scales the status
  // traffic itself.
  resources_.resize(clusters);
  for (std::size_t c = 0; c < clusters; ++c) {
    const auto& cluster = layout_.clusters[c];
    resources_[c].reserve(cluster.resource_nodes.size());
    for (std::size_t r = 0; r < cluster.resource_nodes.size(); ++r) {
      const net::NodeId res_node = cluster.resource_nodes[r];
      auto report = [this, res_node, c, r](const StatusUpdate& u) {
        if (ctrl_active_) {
          // Control plane: the update enters its own node's leaf
          // aggregator directly (same host, no network hop) and climbs
          // the tree from there, coalescing at every hop.
          for (std::size_t e = 0; e < estimators_[c].size(); ++e) {
            ControlTree& ct = ctrl_trees_[c][e];
            ct.aggs[ct.member_of_resource[r]]->ingest({u});
          }
          return;
        }
        const auto& nodes = layout_.clusters[c].estimator_nodes;
        for (std::size_t e = 0; e < estimators_[c].size(); ++e) {
          Estimator* est = estimators_[c][e].get();
          // Status updates are periodic and idempotent: losing one only
          // delays freshness, so they ride the unreliable path.
          network_->send_unreliable(res_node, nodes[e],
                                    config_.costs.size_update,
                                    [est, u]() { est->receive_update(u); });
        }
      };
      resources_[c].push_back(std::make_unique<Resource>(
          sim_, next_entity_id_++, static_cast<ClusterId>(c),
          static_cast<ResourceIndex>(r), resource_rate(),
          config_.costs.job_control, metrics_, std::move(report)));
    }
  }

  // Aggregation forest (after resources so every pre-existing entity
  // keeps its id whether or not the control plane is on; aggregator
  // construction schedules no events, so a degenerately-tuned control
  // plane is invisible to the event stream).
  if (config_.control_plane) setup_control_plane();

  mean_service_time_ =
      workload::expected_exec_time(config_.workload) / config_.service_rate;

  if (config_.faults.any()) setup_faults();

  if (config_.sample_interval > 0.0) {
    sampler_entity_id_ = next_entity_id_++;
    sampler_ = std::make_unique<StateSampler>(*this, sampler_entity_id_,
                                              config_.sample_interval);
  }

  if (config_.telemetry != nullptr) setup_telemetry();
}

void GridSystem::setup_control_plane() {
  const std::size_t clusters = layout_.clusters.size();
  ctrl_trees_.resize(clusters);
  for (std::size_t c = 0; c < clusters; ++c) {
    const auto& cluster = layout_.clusters[c];
    ctrl_trees_[c].reserve(cluster.estimator_nodes.size());
    for (std::size_t e = 0; e < cluster.estimator_nodes.size(); ++e) {
      ControlTree ct;
      ct.tree = ctrl::build_tree(network_->router(), cluster.estimator_nodes[e],
                                 cluster.resource_nodes,
                                 config_.tuning.agg_fanout);
      // Map each resource to the member hosting its node (first-fit so
      // co-located resources, if a layout ever produced them, still get
      // distinct leaves).
      ct.member_of_resource.assign(cluster.resource_nodes.size(), 0);
      std::vector<bool> claimed(ct.tree.members.size(), false);
      for (std::size_t r = 0; r < cluster.resource_nodes.size(); ++r) {
        for (std::size_t m = 0; m < ct.tree.members.size(); ++m) {
          if (!claimed[m] && ct.tree.members[m] == cluster.resource_nodes[r]) {
            ct.member_of_resource[r] = static_cast<std::uint32_t>(m);
            claimed[m] = true;
            break;
          }
        }
      }
      ct.aggs.reserve(ct.tree.members.size());
      for (std::size_t m = 0; m < ct.tree.members.size(); ++m) {
        const ClusterId cid = static_cast<ClusterId>(c);
        const std::uint32_t member = static_cast<std::uint32_t>(m);
        // forward_up resolves the parent at call time, so reset-cycle
        // rewires (the tuner moving the fan-out) need no re-wiring here.
        auto forward = [this, cid, e, member](std::vector<StatusUpdate> ups) {
          forward_up(cid, e, member, std::move(ups));
        };
        ct.aggs.push_back(std::make_unique<ctrl::Aggregator>(
            sim_, next_entity_id_++, ct.tree.members[m],
            config_.costs.ctrl_process_update, config_.costs.ctrl_forward_batch,
            std::move(forward)));
      }
      ctrl_trees_[c].push_back(std::move(ct));
    }
  }
  configure_control_plane();
}

void GridSystem::configure_control_plane() {
  for (auto& cluster : ctrl_trees_) {
    for (auto& ct : cluster) {
      ctrl::rewire(ct.tree, config_.tuning.agg_fanout);
      for (auto& agg : ct.aggs) {
        agg->configure(config_.tuning.agg_batch, config_.tuning.agg_flush);
      }
    }
  }
  ctrl_active_ =
      config_.control_plane && !config_.tuning.aggregation_degenerate();
}

void GridSystem::forward_up(ClusterId cluster, std::size_t estimator,
                            std::uint32_t member,
                            std::vector<StatusUpdate> updates) {
  if (updates.empty()) return;
  ControlTree& ct = ctrl_trees_[cluster][estimator];
  const net::NodeId from = ct.tree.members[member];
  const double size =
      config_.costs.size_update * static_cast<double>(updates.size());
  const std::int32_t parent = ct.tree.parent[member];
  // Status traffic stays on the unreliable path through the tree, same
  // as the legacy point-to-point sends.
  if (parent == ctrl::kToRoot) {
    Estimator* est = estimators_[cluster][estimator].get();
    const net::NodeId est_node =
        layout_.clusters[cluster].estimator_nodes[estimator];
    network_->send_unreliable(from, est_node, size,
                              [est, ups = std::move(updates)]() mutable {
                                est->receive_bundle(std::move(ups));
                              });
  } else {
    ctrl::Aggregator* up = ct.aggs[static_cast<std::size_t>(parent)].get();
    network_->send_unreliable(from, up->node(), size,
                              [up, ups = std::move(updates)]() mutable {
                                up->ingest(std::move(ups));
                              });
  }
}

void GridSystem::setup_faults() {
  const fault::FaultPlan& plan = config_.faults;

  // Flatten the entities so injector hooks address them by dense index;
  // flattening order (cluster-major) is part of the substream contract.
  std::vector<Resource*> res_flat;
  for (auto& cluster : resources_) {
    for (auto& res : cluster) res_flat.push_back(res.get());
  }
  std::vector<Estimator*> est_flat;
  for (auto& cluster : estimators_) {
    for (auto& est : cluster) est_flat.push_back(est.get());
  }
  std::vector<ctrl::Aggregator*> agg_flat;
  for (auto& cluster : ctrl_trees_) {
    for (auto& ct : cluster) {
      for (auto& agg : ct.aggs) agg_flat.push_back(agg.get());
    }
  }

  const exec::SeedSequence seeds = fault::fault_seeds(config_.seed);

  // Message faults ride their own reserved substream, so enabling churn
  // alone leaves the message path untouched (and vice versa).
  if (plan.messages.enabled()) {
    net::NetFaults nf;
    nf.drop = plan.messages.drop;
    nf.duplicate = plan.messages.duplicate;
    nf.delay_probability = plan.messages.delay_probability;
    nf.delay_mean = plan.messages.delay_mean;
    network_->set_faults(
        nf, util::RandomStream(seeds.at(
                fault::FaultInjector::net_stream_index(res_flat.size()))));
  }

  // Robustness mixin on every scheduler.  The staleness window tracks
  // the tuned update interval — the same enabler the paper's procedure
  // searches — so eviction adapts as the tuner moves tau.
  const double window =
      plan.robustness.staleness_factor * config_.tuning.update_interval;
  for (auto& sched : schedulers_) {
    sched->enable_robustness(window, plan.robustness.requeue_budget,
                             plan.robustness.retry_budget,
                             plan.robustness.retry_backoff_base);
  }

  // Crash-killed jobs travel back to the cluster's scheduler over a
  // reliable hop (they carry state) and re-enter as ordinary decisions:
  // the return traffic and the repeat decision work are charged to G(k).
  for (std::size_t c = 0; c < resources_.size(); ++c) {
    for (std::size_t r = 0; r < resources_[c].size(); ++r) {
      const net::NodeId res_node = layout_.clusters[c].resource_nodes[r];
      resources_[c][r]->set_kill_handler(
          [this, c, res_node](std::vector<workload::Job> killed) {
            SchedulerBase& sched = scheduler_for(static_cast<ClusterId>(c));
            for (auto& job : killed) {
              network_->send(res_node, sched.node(), config_.costs.size_job,
                             [&sched, job = std::move(job)]() mutable {
                               sched.deliver_requeue(std::move(job));
                             });
            }
          });
    }
  }

  fault::FaultHooks hooks;
  if (plan.churn.enabled()) {
    hooks.crash_resource = [res_flat](std::size_t i) { res_flat[i]->crash(); };
    hooks.recover_resource = [res_flat](std::size_t i) {
      res_flat[i]->recover();
    };
  }
  if (plan.estimator_blackout.enabled()) {
    hooks.estimator_blackout = [est_flat](std::size_t e, bool down) {
      est_flat[e]->set_down(down);
    };
  }
  if (plan.scheduler_blackout.enabled()) {
    hooks.scheduler_blackout = [this](std::size_t s, bool down) {
      schedulers_[s]->set_blackout(down);
    };
  }
  if (plan.aggregator_blackout.enabled()) {
    hooks.aggregator_blackout = [agg_flat](std::size_t a, bool down) {
      agg_flat[a]->set_blackout(down);
    };
  }
  if (!injector_id_assigned_) {
    injector_entity_id_ = next_entity_id_++;
    injector_id_assigned_ = true;
  }
  injector_ = std::make_unique<fault::FaultInjector>(
      sim_, injector_entity_id_, plan, seeds, res_flat.size(),
      est_flat.size(), schedulers_.size(), std::move(hooks),
      agg_flat.size());
}

void GridSystem::setup_telemetry() {
  obs::Telemetry& telemetry = *config_.telemetry;
  const obs::TelemetryConfig& tc = telemetry.config();

  if (tc.metrics_enabled()) {
    // Phase registration order is fixed so counts_json() / to_json()
    // layouts are identical across runs and worker lanes.
    profiler_ = &telemetry.profiler();
    run_phase_ = profiler_->phase("sim.run");
    workload_phase_ = profiler_->phase("workload.generate");
    const obs::PhaseId decision = profiler_->phase("sched.decision");
    const obs::PhaseId batch = profiler_->phase("sched.batch");
    const obs::PhaseId est_update = profiler_->phase("est.update");
    const obs::PhaseId net_route = profiler_->phase("net.route");
    for (auto& sched : schedulers_) {
      sched->attach_profiler(profiler_, decision, batch);
    }
    for (auto& cluster : estimators_) {
      for (auto& est : cluster) est->attach_profiler(profiler_, est_update);
    }
    network_->attach_profiler(profiler_, net_route);

    // Distribution probes: registration order fixes the manifest layout.
    obs::HistogramRegistry& h = telemetry.histograms();
    metrics_.attach_probes(&h.histogram("job_wait"),
                           &h.histogram("job_response"),
                           &h.histogram("job_slowdown"),
                           &h.histogram("sched_queue_depth"),
                           &h.histogram("status_staleness"));
    if (config_.control_plane) {
      // Registered after the legacy five so control-plane-off manifests
      // keep their exact histogram layout.
      obs::Histogram* coalescing = &h.histogram("ctrl_coalescing");
      obs::Histogram* hop_delay = &h.histogram("ctrl_hop_delay");
      for (auto& cluster : ctrl_trees_) {
        for (auto& ct : cluster) {
          for (auto& agg : ct.aggs) agg->attach_probes(coalescing, hop_delay);
        }
      }
    }
  }

  if (!tc.trace_enabled()) {
    // Probe / manifest need no construction-time wiring.
    trace_jobs_ = false;
    return;
  }
  trace_ = &telemetry.trace();

  if (tc.metrics_enabled()) {
    // Wall-clock profiler spans land on their own track; all other
    // tracks carry scaled sim time.
    profiler_->attach_trace(trace_,
                            trace_->register_track("profiler (wall us)"));
  }

  if (tc.dispatch_sample_every > 0) {
    const obs::TraceTid kernel_tid = trace_->register_track("sim/kernel");
    sim_.set_dispatch_observer(
        tc.dispatch_sample_every,
        [this, kernel_tid](sim::Time at, std::uint64_t dispatched,
                           std::size_t pending) {
          trace_->counter(kernel_tid, "events_dispatched", at,
                          static_cast<double>(dispatched));
          trace_->counter(kernel_tid, "pending_events", at,
                          static_cast<double>(pending));
        });
  }

  if (tc.trace_spans) {
    for (auto& sched : schedulers_) {
      sched->attach_trace(trace_, trace_->register_track(sched->name()));
    }
    for (std::size_t c = 0; c < estimators_.size(); ++c) {
      for (std::size_t e = 0; e < estimators_[c].size(); ++e) {
        estimators_[c][e]->attach_trace(
            trace_, trace_->register_track(
                        "estimator/" + std::to_string(c) + "." +
                        std::to_string(e)));
      }
    }
    middleware_->attach_trace(trace_, trace_->register_track("middleware"));
  }

  if (tc.trace_messages) {
    trace_messages_ = true;
    msg_tid_ = trace_->register_track("rms/messages");
  }

  if (tc.trace_jobs) {
    // Job spans are reconstructed from the lifecycle log after the run.
    trace_jobs_ = true;
    sink_->log().set_enabled(true);
    jobs_tid_ = trace_->register_track("jobs");
  }
}

void GridSystem::probe_tick() {
  obs::TimeSeriesProbe* probe = config_.telemetry->probe();
  obs::ProbeSample sample;
  sample.at = sim_.now();
  sample.F = metrics_.useful_work();
  sample.G = current_overhead_work();
  sample.H = metrics_.control_overhead() + metrics_.wasted_work();
  fill_probe_state(sample);
  probe->add(sample);
  // The final row lands exactly at the horizon (appended from the
  // assembled result), so periodic ticks stop strictly before it.
  const double next = sim_.now() + probe->interval();
  if (next < config_.horizon) {
    sim_.schedule_at(next, [this]() { probe_tick(); });
  }
}

void GridSystem::fill_probe_state(obs::ProbeSample& sample) {
  std::size_t resources = 0, busy = 0;
  double load_sum = 0.0;
  for (const auto& cluster : resources_) {
    for (const auto& res : cluster) {
      ++resources;
      if (res->busy()) ++busy;
      load_sum += res->load();
    }
  }
  if (resources > 0) {
    sample.pool_busy_fraction =
        static_cast<double>(busy) / static_cast<double>(resources);
    sample.mean_resource_load = load_sum / static_cast<double>(resources);
  }
  for (const auto& sched : schedulers_) {
    sample.scheduler_backlog += sched->queue_length();
  }
  sample.middleware_backlog = middleware_->queue_length();

  // Per-class utilization over the window since the previous sample:
  // busy-time delta divided by the window's capacity (window x servers).
  double sched_busy = 0.0, est_busy = 0.0;
  for (const auto& sched : schedulers_) sched_busy += sched->busy_time();
  std::size_t est_count = 0;
  for (const auto& cluster : estimators_) {
    for (const auto& est : cluster) {
      est_busy += est->busy_time();
      ++est_count;
    }
  }
  const double mw_busy = middleware_->busy_time();
  const double window = sample.at - probe_prev_time_;
  if (window > 0.0) {
    sample.scheduler_util = (sched_busy - probe_prev_sched_busy_) /
                            (window * static_cast<double>(schedulers_.size()));
    if (est_count > 0) {
      sample.estimator_util = (est_busy - probe_prev_est_busy_) /
                              (window * static_cast<double>(est_count));
    }
    sample.middleware_util = (mw_busy - probe_prev_mw_busy_) / window;
  }
  probe_prev_time_ = sample.at;
  probe_prev_sched_busy_ = sched_busy;
  probe_prev_est_busy_ = est_busy;
  probe_prev_mw_busy_ = mw_busy;

  sample.jobs_arrived = metrics_.jobs_arrived();
  sample.jobs_completed = metrics_.jobs_completed();
  sample.events_dispatched = sim_.dispatched_events();
}

double GridSystem::current_overhead_work() const {
  double g = 0.0;
  for (const auto& sched : schedulers_) g += sched->work_in_system_time();
  for (const auto& cluster : estimators_) {
    for (const auto& est : cluster) g += est->work_in_system_time();
  }
  g += middleware_->work_in_system_time();
  for (const auto& cluster : ctrl_trees_) {
    for (const auto& ct : cluster) {
      for (const auto& agg : ct.aggs) g += agg->work_in_system_time();
    }
  }
  return g;
}

void GridSystem::finish_telemetry(const SimulationResult& result) {
  obs::Telemetry& telemetry = *config_.telemetry;
  if (trace_ != nullptr) {
    for (auto& sched : schedulers_) sched->close_open_span(config_.horizon);
    for (auto& cluster : estimators_) {
      for (auto& est : cluster) est->close_open_span(config_.horizon);
    }
    middleware_->close_open_span(config_.horizon);
    if (trace_jobs_) {
      export_job_spans(sink_->log(), *trace_, jobs_tid_, config_.horizon);
    }
  }
  if (obs::TimeSeriesProbe* probe = telemetry.probe()) {
    // Final row at the horizon, cumulative terms copied from the
    // assembled result so the CSV's last row matches it digit-exactly.
    obs::ProbeSample last;
    last.at = config_.horizon;
    last.F = result.F;
    last.G = result.G();
    last.H = result.H();
    fill_probe_state(last);
    last.jobs_arrived = result.jobs_arrived;
    last.jobs_completed = result.jobs_completed;
    last.events_dispatched = result.events_dispatched;
    probe->add(last);
  }
  if (telemetry.config().manifest_enabled()) {
    fill_manifest(telemetry.manifest(), config_, result);
  }
  telemetry.mark_run_end();
}

GridSystem::~GridSystem() = default;

Resource& GridSystem::resource(ClusterId cluster, ResourceIndex index) {
  return *resources_.at(cluster).at(index);
}

SchedulerBase& GridSystem::scheduler_for(ClusterId cluster) {
  if (config_.rms == RmsKind::kCentral) return *schedulers_[0];
  return *schedulers_.at(cluster);
}

void GridSystem::route_message(net::NodeId from_node, RmsMessage msg,
                               bool via_middleware) {
  if (msg.kind == MsgKind::kJobTransfer && msg.job) {
    metrics_.record_job_event(msg.job->id, JobEvent::kTransfer, sim_.now(),
                              msg.to);
  }
  if (trace_messages_) {
    trace_->instant(msg_tid_, to_string(msg.kind), "rms", sim_.now(),
                    {{"from", static_cast<double>(msg.from)},
                     {"to", static_cast<double>(msg.to)}});
  }
  SchedulerBase& dst = scheduler_for(msg.to);
  // Job transfers carry state that must not vanish; everything else is
  // a control message, subject to failure injection.
  const bool reliable = msg.kind == MsgKind::kJobTransfer;
  const double size = reliable ? config_.costs.size_job
                               : config_.costs.size_control;
  const net::NodeId dst_node = dst.node();
  auto ship = [this, reliable](net::NodeId from, net::NodeId to, double sz,
                               sim::EventFn cb) {
    if (reliable) {
      network_->send(from, to, sz, std::move(cb));
    } else {
      network_->send_unreliable(from, to, sz, std::move(cb));
    }
  };
  if (via_middleware) {
    // First hop to the middleware queue, its service time, then the
    // second hop to the destination (paper: superschedulers communicate
    // "through a Grid middleware").
    ship(from_node, middleware_node_, size,
         [this, ship, size, dst_node, &dst, msg = std::move(msg)]() mutable {
           middleware_->relay([this, ship, size, dst_node, &dst,
                               msg = std::move(msg)]() mutable {
             ship(middleware_node_, dst_node, size,
                  [&dst, msg = std::move(msg)]() mutable {
                    dst.deliver_message(std::move(msg));
                  });
           });
         });
  } else {
    ship(from_node, dst_node, size,
         [&dst, msg = std::move(msg)]() mutable {
           dst.deliver_message(std::move(msg));
         });
  }
}

void GridSystem::ship_job_to_resource(net::NodeId from_node,
                                      ClusterId cluster, ResourceIndex index,
                                      workload::Job job) {
  metrics_.record_job_event(job.id, JobEvent::kDispatch, sim_.now(), cluster);
  Resource& res = resource(cluster, index);
  const net::NodeId res_node =
      layout_.clusters.at(cluster).resource_nodes.at(index);
  network_->send(from_node, res_node, config_.costs.size_job,
                 [&res, job = std::move(job)]() mutable {
                   res.accept_job(std::move(job));
                 });
}

void GridSystem::deliver_arrival(const workload::Job& job) {
  metrics_.record_arrival(job);
  SchedulerBase& sched = scheduler_for(job.origin_cluster);
  if (config_.rms == RmsKind::kCentral &&
      sched.node() != layout_.clusters[job.origin_cluster].scheduler_node) {
    // CENTRAL: the submission point forwards the job to the single
    // central scheduler over the network.
    const net::NodeId gateway =
        layout_.clusters[job.origin_cluster].scheduler_node;
    network_->send(gateway, sched.node(), config_.costs.size_job,
                   [&sched, job]() { sched.deliver_job(job); });
  } else {
    sched.deliver_job(job);
  }
}

void GridSystem::schedule_next_arrival() {
  workload::Job* slot = arrival_arena_.acquire();
  if (!arrival_stream_->next(*slot)) {
    arrival_arena_.release(slot);
    return;
  }
  stream_stats_.add(*slot);
  sim_.schedule_at(slot->arrival, [this, slot]() {
    const workload::Job job = *slot;
    arrival_arena_.release(slot);
    // Chain the successor before delivering, so on a shared arrival time
    // the next job's event is enqueued ahead of anything delivery spawns
    // — matching the materialized path's pre-scheduled order.
    schedule_next_arrival();
    deliver_arrival(job);
  });
}

void GridSystem::schedule_arrivals() {
  workload::WorkloadConfig wl = config_.workload;
  wl.clusters = static_cast<std::uint32_t>(cluster_count());
  workload::SourceSpec spec = config_.workload_source;
  if (!config_.trace_path.empty()) {
    // Legacy shorthand: trace_path is the trace source by another name
    // (validate() forbids setting both).
    spec = workload::SourceSpec{};
    spec.kind = workload::SourceKind::kTrace;
    spec.path = config_.trace_path;
  }

  if (config_.result_mode == ResultMode::kStreaming) {
    // Pull-based path: jobs flow one at a time through an arena slot, so
    // peak memory is independent of the job count.  A cache hit replays
    // the materialized vector; a miss streams live and is NOT stored
    // (one-shot scale runs must not leave a multi-GB vector behind).
    obs::PhaseProfiler::Scope scope(profiler_, workload_phase_);
    workload::PulledArrivals pulled = workload::cached_stream(
        workload_digest(config_), spec, wl, config_.seed, config_.horizon,
        /*reusable=*/false);
    arrival_stream_ = std::move(pulled.stream);
    workload_from_cache_ = pulled.from_cache;
    stream_stats_ = workload::TraceStatsAccumulator{};
    schedule_next_arrival();
    return;
  }

  // Materialized path: the stream depends only on the structural config
  // (never the tuning enablers), so one generation serves every reset
  // cycle.
  if (!arrivals_cached_) {
    obs::PhaseProfiler::Scope scope(profiler_, workload_phase_);
    workload::ArrivalStream stream = workload::cached_arrivals(
        workload_digest(config_), spec, wl, config_.seed, config_.horizon);
    arrival_jobs_ = std::move(stream.jobs);
    workload_from_cache_ = stream.from_cache;
    arrivals_cached_ = true;
  }
  const std::vector<workload::Job>& jobs = *arrival_jobs_;
  SCAL_INFO("grid: " << jobs.size() << " jobs over horizon "
                     << config_.horizon);
  for (const auto& job : jobs) {
    sim_.schedule_at(job.arrival, [this, job]() { deliver_arrival(job); });
  }
}

SimulationResult GridSystem::run() {
  if (ran_) throw std::logic_error("GridSystem::run: already ran");
  ran_ = true;

  obs::Telemetry* telemetry = config_.telemetry;
  if (telemetry != nullptr) {
    telemetry->mark_run_start();
    // Log lines carry the simulated clock for the duration of the run.
    util::set_log_time_source([this]() { return sim_.now(); });
    if (telemetry->probe() != nullptr) {
      sim_.schedule_at(0.0, [this]() { probe_tick(); });
    }
  }

  schedule_arrivals();

  util::RandomStream offset_rng(config_.seed, "report-offsets");
  // Under faults, bound suppression at half the staleness window so a
  // live-but-quiet resource always reports before eviction would hit it.
  const double max_silence =
      config_.faults.any()
          ? 0.5 * config_.faults.robustness.staleness_factor *
                config_.tuning.update_interval
          : 0.0;
  for (auto& cluster : resources_) {
    for (auto& res : cluster) {
      res->start_reporting(config_.tuning.update_interval,
                           offset_rng.uniform(0.0,
                                              config_.tuning.update_interval),
                           config_.update_suppression, max_silence);
    }
  }
  for (auto& sched : schedulers_) sched->on_start();
  if (injector_) injector_->start();
  if (sampler_) sampler_->start();

  {
    // The event loop is the root scope: every instrumented phase below
    // it (decisions, batch folds, estimator updates, routing) nests
    // here, so "sim.run" self time is the kernel's own dispatch cost.
    obs::PhaseProfiler::Scope scope(profiler_, run_phase_);
    sim_.run(config_.horizon);
  }

  // Horizon sweep: work already invested in still-running jobs is waste.
  for (auto& cluster : resources_) {
    for (auto& res : cluster) {
      if (res->busy()) metrics_.record_unfinished(res->in_service_partial());
    }
  }
  SimulationResult result = assemble_result();
  if (telemetry != nullptr) {
    finish_telemetry(result);
    util::set_log_time_source(nullptr);
  }
  return result;
}

bool GridSystem::reset_compatible(const GridConfig& next) const {
  if (config_.telemetry != nullptr || next.telemetry != nullptr) return false;
  // Rates (service rate, mean interarrival) are excluded alongside the
  // tuning enablers: the reset path re-applies them, so a Case-2 style
  // service-rate sweep keeps the warm topology/routing/cluster state.
  return config_digest(config_, /*include_tuning=*/false,
                       /*include_rates=*/false) ==
         config_digest(next, /*include_tuning=*/false,
                       /*include_rates=*/false);
}

void GridSystem::reset(const GridConfig& next) {
  if (!reset_compatible(next)) {
    throw std::logic_error(
        "GridSystem::reset: config differs structurally (or telemetry is "
        "attached); build a fresh system instead");
  }
  next.validate();
  // The fields reset re-applies: the tuning enablers plus the rates.
  const bool rate_changed = config_.service_rate != next.service_rate;
  const bool arrivals_changed =
      config_.workload.mean_interarrival != next.workload.mean_interarrival;
  config_.tuning = next.tuning;
  config_.service_rate = next.service_rate;
  config_.workload.mean_interarrival = next.workload.mean_interarrival;

  sim_.reset();
  metrics_.reset();
  sink_->log().clear();
  arrival_stream_.reset();

  network_->reset_counters();
  network_->set_delay_scale(config_.tuning.link_delay_scale);
  if (config_.control_loss_probability > 0.0) {
    // Re-arm with a fresh stream so the drop draw sequence replays
    // exactly like a fresh build.
    network_->set_loss(config_.control_loss_probability,
                       util::RandomStream(config_.seed, "control-loss"));
  }

  middleware_->reset_server();
  for (auto& sched : schedulers_) sched->reset();
  for (auto& cluster : estimators_) {
    for (auto& est : cluster) est->reset();
  }
  for (auto& cluster : resources_) {
    for (auto& res : cluster) res->reset();
  }
  if (rate_changed) {
    // Re-rate the pool through the recorded heterogeneity multipliers —
    // identical to what a fresh build at the new rate would draw.
    std::size_t i = 0;
    for (auto& cluster : resources_) {
      for (auto& res : cluster) {
        res->set_service_rate(config_.service_rate * rate_multipliers_[i++],
                              config_.costs.job_control);
      }
    }
    mean_service_time_ =
        workload::expected_exec_time(config_.workload) / config_.service_rate;
  }
  // A new interarrival mean invalidates the cached arrival stream; the
  // next run regenerates it from the same "workload" substream, exactly
  // as a fresh build would.
  if (arrivals_changed) arrivals_cached_ = false;
  for (auto& cluster : ctrl_trees_) {
    for (auto& ct : cluster) {
      for (auto& agg : ct.aggs) agg->reset();
    }
  }
  if (config_.control_plane) configure_control_plane();

  // Fault wiring is rebuilt from scratch: the schedulers' staleness
  // window derives from the (possibly new) tuned update interval, the
  // resources' kill handlers were dropped by their reset, and the
  // injector re-derives its substreams from the pinned entity id.
  injector_.reset();
  if (config_.faults.any()) setup_faults();

  if (config_.sample_interval > 0.0) {
    sampler_ = std::make_unique<StateSampler>(*this, sampler_entity_id_,
                                              config_.sample_interval);
  }

  ran_ = false;
}

SimulationResult GridSystem::assemble_result() {
  SimulationResult r;
  r.F = metrics_.useful_work();
  r.H_wasted = metrics_.wasted_work();
  r.H_control = metrics_.control_overhead();
  for (const auto& sched : schedulers_) {
    const double work = sched->work_in_system_time();
    r.G_scheduler += work;
    r.G_scheduler_max = std::max(r.G_scheduler_max, work);
  }
  if (r.G_scheduler > 0.0) {
    r.G_scheduler_max_share = r.G_scheduler_max / r.G_scheduler;
  }
  for (const auto& cluster : estimators_) {
    for (const auto& est : cluster) {
      r.G_estimator += est->work_in_system_time();
    }
  }
  r.G_middleware = middleware_->work_in_system_time();
  if (config_.control_plane) {
    for (const auto& cluster : ctrl_trees_) {
      for (const auto& ct : cluster) {
        r.ctrl_tree_depth = std::max(
            r.ctrl_tree_depth, static_cast<std::uint64_t>(ct.tree.depth()));
        for (const auto& agg : ct.aggs) {
          r.G_aggregator += agg->work_in_system_time();
          r.ctrl_updates_in += agg->updates_in();
          r.ctrl_updates_coalesced += agg->updates_coalesced();
          r.ctrl_batches += agg->batches_out();
        }
      }
    }
  }

  r.jobs_arrived = metrics_.jobs_arrived();
  r.jobs_local = metrics_.jobs_local();
  r.jobs_remote = metrics_.jobs_remote();
  r.jobs_completed = metrics_.jobs_completed();
  r.jobs_succeeded = metrics_.jobs_succeeded();
  r.jobs_missed_deadline = metrics_.jobs_missed_deadline();
  r.jobs_unfinished = metrics_.jobs_arrived() - metrics_.jobs_completed();
  r.polls = metrics_.polls();
  r.transfers = metrics_.transfers();
  r.auctions = metrics_.auctions();
  r.adverts = metrics_.adverts();
  r.updates_received = metrics_.updates_received();
  r.updates_suppressed = metrics_.updates_suppressed();
  r.network_messages = network_->messages_sent();
  r.messages_dropped = network_->messages_dropped();
  r.events_dispatched = sim_.dispatched_events();
  r.horizon = config_.horizon;

  if (config_.faults.any()) {
    r.resource_crashes = injector_->counters().crashes;
    r.resource_recoveries = injector_->counters().recoveries;
    r.aggregator_blackouts = injector_->counters().aggregator_blackouts;
    r.jobs_killed = metrics_.jobs_killed();
    r.jobs_requeued = metrics_.jobs_requeued();
    r.jobs_lost = metrics_.jobs_lost();
    r.round_retries = metrics_.round_retries();
    r.status_evictions = metrics_.status_evictions();
    r.messages_delayed = network_->messages_delayed();
    r.messages_duplicated = network_->messages_duplicated();
    // Scheduler-side drops are counted by the mixin; estimator-side
    // drops are the items their down servers discarded.
    r.blackout_drops = metrics_.blackout_drops();
    for (const auto& cluster : estimators_) {
      for (const auto& est : cluster) {
        r.blackout_drops += est->items_discarded();
      }
    }
    double downtime = 0.0;
    std::size_t pool = 0;
    for (const auto& cluster : resources_) {
      for (const auto& res : cluster) {
        downtime += res->downtime_through(config_.horizon);
        ++pool;
      }
    }
    r.resource_downtime = downtime;
    const double capacity =
        static_cast<double>(pool) * config_.horizon;
    r.availability = capacity > 0.0 ? 1.0 - downtime / capacity : 1.0;
  }

  r.throughput = config_.horizon > 0.0
                     ? static_cast<double>(r.jobs_completed) / config_.horizon
                     : 0.0;
  // Mean before p95: in full mode percentile() sorts the sample store,
  // which would change the mean's summation order (and its last bits).
  r.mean_response = metrics_.response_mean();
  r.p95_response = metrics_.response_p95();
  if (config_.result_mode == ResultMode::kStreaming) {
    r.workload_stats = stream_stats_.stats();
  } else if (arrival_jobs_) {
    r.workload_stats = workload::summarize(*arrival_jobs_);
  }
  r.workload_from_cache = workload_from_cache_;
  r.result_mode = config_.result_mode;
  r.job_log_records = sink_->log().size();
  r.job_log_dropped = sink_->log().dropped();
  r.arena_high_water = arrival_arena_.high_water();
  r.arena_reuses = arrival_arena_.reuses();
  r.arrival_cache_evictions = workload::ArrivalCache::instance().evictions();
  r.arrival_cache_store_skips =
      workload::ArrivalCache::instance().store_skips();
  r.telemetry = config_.telemetry;
  return r;
}

}  // namespace scal::grid
