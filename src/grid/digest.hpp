#pragma once
// 128-bit structural digest of a GridConfig: a deterministic fingerprint
// of every field that affects simulation output.  Two configs with equal
// digests produce bit-identical runs (doubles are hashed by bit pattern,
// so the comparison is exact, not approximate).  Consumers:
//   - opt::EvalKey — the tuner's evaluation cache pins the whole config
//     (minus the search point, which is keyed separately) this way, so
//     caches can be shared across tunes, RMS kinds, and scale factors
//     without any risk of cross-contamination;
//   - GridSystem::reset_compatible — a built system can be rewound and
//     re-run under a new config iff the digests excluding the tuning
//     enablers and the rate fields match (exactly what reset()
//     re-applies), so Case-2-style service-rate sweeps keep their
//     simulation sessions warm across scale points.

#include <array>
#include <cstdint>

#include "grid/config.hpp"

namespace scal::grid {

/// Digest every simulation-affecting field of `config`; the telemetry
/// handle is excluded (observational only).  `include_tuning = false`
/// skips the scaling enablers; `include_rates = false` additionally
/// skips the resource service rate and the workload's mean
/// interarrival — the rate-only deltas the reset path re-applies (the
/// arrival stream and per-resource rates are re-derived from the same
/// substreams, so a rate-only reset stays bit-identical to a fresh
/// build).  Both excluded yields the structural identity
/// reset_compatible keys on.
std::array<std::uint64_t, 2> config_digest(const GridConfig& config,
                                           bool include_tuning = true,
                                           bool include_rates = true);

/// Digest of exactly the inputs that shape the arrival stream (workload
/// model, source spec, legacy trace path, seed, horizon, cluster
/// count): the workload::ArrivalCache key.  Equal digests guarantee the
/// generated job vectors are bit-identical, so memoized streams can be
/// shared across systems, sessions, and tuner lanes.
std::array<std::uint64_t, 2> workload_digest(const GridConfig& config);

}  // namespace scal::grid
