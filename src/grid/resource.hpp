#pragma once
// A grid resource: one node of the resource pool.  Executes dispatched
// jobs FCFS at a configurable service rate, reports its load to its
// status collector (estimator) every update-interval tick — with
// change-suppression, as all of the paper's periodic-update schemes use —
// and supports the queue-steal operation AUCTION's pull protocol needs.

#include <algorithm>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "grid/messages.hpp"
#include "grid/metrics.hpp"
#include "sim/entity.hpp"
#include "util/rng.hpp"

namespace scal::grid {

class Resource : public sim::Entity {
 public:
  /// `report` ships a StatusUpdate toward this resource's estimator
  /// (the system wires the network hop in).  `job_control_demand` is
  /// the launch/teardown work per job in demand units; its wall-clock
  /// cost is job_control_demand / service_rate.
  Resource(sim::Simulator& sim, sim::EntityId id, ClusterId cluster,
           ResourceIndex index, double service_rate,
           double job_control_demand, MetricsCollector& metrics,
           std::function<void(const StatusUpdate&)> report);

  /// Begin the periodic reporting cycle.  `interval` is the tuned
  /// update interval tau; `offset` desynchronizes resources.
  /// `max_silence > 0` bounds suppression: a report is forced whenever
  /// that much time passed since the last one actually sent, so the
  /// robustness mixin's staleness eviction never evicts a live resource
  /// that is merely quiet.  0 (the default) keeps pure suppression.
  void start_reporting(double interval, double offset, bool suppression,
                       double max_silence = 0.0);

  /// A dispatched job arrives (network delay already paid).  Arrival at
  /// a down resource kills the job (the dispatcher's view was stale);
  /// it is routed to the kill handler like a crash casualty.
  void accept_job(workload::Job job);

  /// Fault injection: destroy queued and in-service work, un-charge the
  /// unserved remainder of the in-service span, and go down.  Killed
  /// jobs flow to the kill handler (wired by GridSystem) for requeue.
  void crash();
  /// Leave the down state.  The next periodic report is forced (bypasses
  /// suppression) and flagged StatusUpdate::recovered.
  void recover();
  bool down() const noexcept { return down_; }
  /// Handler for jobs destroyed by crash(); unset means they just vanish.
  void set_kill_handler(std::function<void(std::vector<workload::Job>)> h) {
    kill_handler_ = std::move(h);
  }
  /// Cumulative down-state time as of `at` (open interval included).
  double downtime_through(double at) const noexcept {
    return downtime_ + (down_ ? std::max(0.0, at - down_since_) : 0.0);
  }

  /// AUCTION support: remove and return the most recently queued job
  /// (never the one in service); nullopt if the queue is empty.
  std::optional<workload::Job> steal_queued_job();

  /// Jobs in system (queued + in service).
  double load() const noexcept;
  bool busy() const noexcept { return in_service_.has_value(); }
  std::size_t queue_length() const noexcept { return queue_.size(); }

  /// Service time already invested in the in-service job as of `now`;
  /// used by the horizon sweep to charge partial work as waste.
  double in_service_partial() const noexcept;
  /// Jobs sitting in this resource's queue at the horizon.
  std::size_t unstarted_jobs() const noexcept { return queue_.size(); }

  ClusterId cluster() const noexcept { return cluster_; }
  ResourceIndex index() const noexcept { return index_; }
  std::uint64_t jobs_executed() const noexcept { return executed_; }
  double busy_time() const noexcept { return busy_time_; }

  /// Rewind to the just-constructed state (reusable-system path).  The
  /// identity, rates, and report wiring survive; queue contents, fault
  /// state, counters, and the kill handler are dropped (the system
  /// re-wires the handler when fault injection is active).
  void reset();

  /// Re-rate the resource (rate-only reset path, Case-2 sweeps): the new
  /// service rate plus the per-job control demand it re-derives the
  /// control time from.  Only valid between runs (the caller resets
  /// first), so no in-flight service span needs rescaling.
  void set_service_rate(double service_rate, double job_control_demand);

  double service_rate() const noexcept { return service_rate_; }

 private:
  void begin_service();
  void report_now();

  ClusterId cluster_;
  ResourceIndex index_;
  double service_rate_;
  double control_time_;  ///< job_control_demand / service_rate
  MetricsCollector* metrics_;
  std::function<void(const StatusUpdate&)> report_;

  std::deque<workload::Job> queue_;
  std::optional<workload::Job> in_service_;
  sim::Time service_started_ = 0.0;
  double current_service_time_ = 0.0;
  sim::EventId completion_event_ = 0;

  double report_interval_ = 0.0;
  bool suppression_ = true;
  bool reported_once_ = false;
  double last_reported_load_ = -1.0;
  double max_silence_ = 0.0;
  double last_sent_ = 0.0;

  bool down_ = false;
  bool recovered_pending_ = false;
  double down_since_ = 0.0;
  double downtime_ = 0.0;
  std::function<void(std::vector<workload::Job>)> kill_handler_;

  std::uint64_t executed_ = 0;
  double busy_time_ = 0.0;
};

}  // namespace scal::grid
