#pragma once
// A grid resource: one node of the resource pool.  Executes dispatched
// jobs FCFS at a configurable service rate, reports its load to its
// status collector (estimator) every update-interval tick — with
// change-suppression, as all of the paper's periodic-update schemes use —
// and supports the queue-steal operation AUCTION's pull protocol needs.

#include <deque>
#include <functional>
#include <optional>

#include "grid/messages.hpp"
#include "grid/metrics.hpp"
#include "sim/entity.hpp"
#include "util/rng.hpp"

namespace scal::grid {

class Resource : public sim::Entity {
 public:
  /// `report` ships a StatusUpdate toward this resource's estimator
  /// (the system wires the network hop in).  `job_control_demand` is
  /// the launch/teardown work per job in demand units; its wall-clock
  /// cost is job_control_demand / service_rate.
  Resource(sim::Simulator& sim, sim::EntityId id, ClusterId cluster,
           ResourceIndex index, double service_rate,
           double job_control_demand, MetricsCollector& metrics,
           std::function<void(const StatusUpdate&)> report);

  /// Begin the periodic reporting cycle.  `interval` is the tuned
  /// update interval tau; `offset` desynchronizes resources.
  void start_reporting(double interval, double offset, bool suppression);

  /// A dispatched job arrives (network delay already paid).
  void accept_job(workload::Job job);

  /// AUCTION support: remove and return the most recently queued job
  /// (never the one in service); nullopt if the queue is empty.
  std::optional<workload::Job> steal_queued_job();

  /// Jobs in system (queued + in service).
  double load() const noexcept;
  bool busy() const noexcept { return in_service_.has_value(); }
  std::size_t queue_length() const noexcept { return queue_.size(); }

  /// Service time already invested in the in-service job as of `now`;
  /// used by the horizon sweep to charge partial work as waste.
  double in_service_partial() const noexcept;
  /// Jobs sitting in this resource's queue at the horizon.
  std::size_t unstarted_jobs() const noexcept { return queue_.size(); }

  ClusterId cluster() const noexcept { return cluster_; }
  ResourceIndex index() const noexcept { return index_; }
  std::uint64_t jobs_executed() const noexcept { return executed_; }
  double busy_time() const noexcept { return busy_time_; }

 private:
  void begin_service();
  void report_now();

  ClusterId cluster_;
  ResourceIndex index_;
  double service_rate_;
  double control_time_;  ///< job_control_demand / service_rate
  MetricsCollector* metrics_;
  std::function<void(const StatusUpdate&)> report_;

  std::deque<workload::Job> queue_;
  std::optional<workload::Job> in_service_;
  sim::Time service_started_ = 0.0;
  double current_service_time_ = 0.0;
  sim::EventId completion_event_ = 0;

  double report_interval_ = 0.0;
  bool suppression_ = true;
  bool reported_once_ = false;
  double last_reported_load_ = -1.0;

  std::uint64_t executed_ = 0;
  double busy_time_ = 0.0;
};

}  // namespace scal::grid
