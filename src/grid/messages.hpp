#pragma once
// Wire-level message records exchanged between grid entities.  The
// network fabric only moves callbacks; these structs are the payloads the
// RMS protocols interpret.

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/time.hpp"
#include "workload/job.hpp"

namespace scal::grid {

using ClusterId = std::uint32_t;
using ResourceIndex = std::uint32_t;  ///< index within its cluster

/// One resource's status report.
struct StatusUpdate {
  ClusterId cluster = 0;
  ResourceIndex resource = 0;
  double load = 0.0;  ///< jobs in system (queued + running)
  bool busy = false;
  /// Set by the estimator when this update shows the resource going
  /// from busy to idle relative to the estimator's own last view.
  /// Replicated estimators each flag the transition in their own
  /// stream — the duplication that makes the event-driven (PUSH+PULL)
  /// policies sensitive to the estimator count (Case 3).
  bool idle_transition = false;
  /// Set by a resource's first report after recovering from a crash.
  /// Estimators treat such a report as a state reset, not a transition —
  /// a resource that crashed while busy must not emit a phantom idle
  /// transition when its fresh zero-load report arrives.
  bool recovered = false;
  sim::Time stamp = 0.0;
};

/// A batch of updates forwarded by an estimator to its scheduler.
struct StatusBatch {
  ClusterId cluster = 0;
  /// Which of the cluster's estimators produced the batch.  Idle-event
  /// triggers in the PUSH+PULL policies (AUCTION, Sy-I) are paced per
  /// estimator — independent estimators do not coordinate their trigger
  /// streams — so scaling the estimator count (Case 3) multiplies the
  /// trigger volume of exactly those policies.
  std::uint32_t estimator = 0;
  std::vector<StatusUpdate> updates;
};

/// Inter-scheduler protocol message kinds (union of what the seven RMS
/// models need).
enum class MsgKind : std::uint8_t {
  kPollRequest,    ///< LOWEST/S-I: "report your loading"
  kPollReply,      ///< least load / AWT / RUS back to the poller
  kJobTransfer,    ///< job handoff for remote execution
  kReservation,    ///< RESERVE: register a reservation at a remote
  kReserveProbe,   ///< RESERVE: "is your cluster still below T_l?"
  kReserveReply,   ///< RESERVE: probe answer
  kAuctionInvite,  ///< AUCTION: invitation to bid
  kAuctionBid,     ///< AUCTION: bid carrying the bidder's load
  kAuctionAward,   ///< AUCTION: winner asked to hand over a job
  kVolunteer,      ///< R-I/Sy-I: "I have underutilized resources"
  kDemandRequest,  ///< R-I: sender ships the head job's demands
  kDemandReply,    ///< R-I: volunteer answers with ATT and RUS
  kNoJob,          ///< negative reply (no job to hand over, etc.)
};

const char* to_string(MsgKind kind);

/// One protocol message.  Fields are interpreted per kind; unused fields
/// stay at defaults.  Carrying a full Job only happens on kJobTransfer.
struct RmsMessage {
  MsgKind kind = MsgKind::kPollRequest;
  ClusterId from = 0;
  ClusterId to = 0;
  std::uint64_t token = 0;  ///< correlates request/reply (job id, auction id)
  double a = 0.0;  ///< kind-specific scalar (load, AWT, ATT, ...)
  double b = 0.0;  ///< kind-specific scalar (RUS, ERT, ...)
  sim::Time stamp = 0.0;
  std::optional<workload::Job> job;
};

}  // namespace scal::grid
