#pragma once
// Periodic state sampler: true (not estimator-lagged) system state on a
// fixed cadence — pool utilization, resource backlog, scheduler and
// middleware queue depths.  Enabled with GridConfig::sample_interval;
// feeds time-series analysis and the utilization_timeline example.

#include <vector>

#include "sim/entity.hpp"

namespace scal::grid {

class GridSystem;

struct StateSample {
  sim::Time at = 0.0;
  double pool_busy_fraction = 0.0;   ///< busy resources / all resources
  double mean_resource_load = 0.0;   ///< jobs in system per resource
  double max_resource_load = 0.0;
  std::size_t scheduler_backlog = 0;  ///< queued work items, all schedulers
  std::size_t middleware_backlog = 0;
  /// Busy fraction of the single hottest cluster (hot-spot detection).
  double hottest_cluster_busy = 0.0;
};

class StateSampler : public sim::Entity {
 public:
  StateSampler(GridSystem& system, sim::EntityId id, double interval);

  /// Begin sampling (first sample at t = 0, then every interval).
  void start();

  const std::vector<StateSample>& samples() const noexcept {
    return samples_;
  }

 private:
  void take_sample();

  GridSystem* system_;
  double interval_;
  std::vector<StateSample> samples_;
};

}  // namespace scal::grid
