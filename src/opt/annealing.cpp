#include "opt/annealing.hpp"

#include <cmath>
#include <stdexcept>

namespace scal::opt {

AnnealingResult anneal(const Space& space, const Objective& objective,
                       const AnnealingConfig& config,
                       util::RandomStream& rng) {
  if (space.size() == 0) {
    throw std::invalid_argument("anneal: empty space");
  }
  if (config.iterations == 0 || config.restarts == 0) {
    throw std::invalid_argument("anneal: zero budget");
  }
  if (!(config.initial_temperature >= config.final_temperature) ||
      !(config.final_temperature > 0.0)) {
    throw std::invalid_argument("anneal: bad temperature schedule");
  }

  AnnealingResult result;
  bool have_best = false;

  const std::size_t per_chain =
      std::max<std::size_t>(1, config.iterations / config.restarts);
  // Geometric cooling ratio hitting final_temperature at chain end.
  const double ratio =
      per_chain > 1
          ? std::pow(config.final_temperature / config.initial_temperature,
                     1.0 / static_cast<double>(per_chain - 1))
          : 1.0;

  for (std::size_t chain = 0; chain < config.restarts; ++chain) {
    Point current = (chain == 0 && config.initial_point)
                        ? space.clamp(*config.initial_point)
                        : (chain == 0 ? space.center() : space.sample(rng));
    double current_value = objective(current);
    ++result.evaluations;
    if (!have_best || current_value < result.best_value) {
      result.best_point = current;
      result.best_value = current_value;
      have_best = true;
    }
    if (config.observer) {
      AnnealStep step;
      step.chain = chain;
      step.iteration = 0;
      step.temperature = config.initial_temperature;
      step.candidate_value = current_value;
      step.current_value = current_value;
      step.best_value = result.best_value;
      step.accepted = true;
      config.observer(step);
    }

    double temperature = config.initial_temperature;
    for (std::size_t it = 1; it < per_chain; ++it) {
      Point candidate = space.neighbor(current, temperature, rng);
      const double candidate_value = objective(candidate);
      ++result.evaluations;

      const double delta = candidate_value - current_value;
      bool accept = delta <= 0.0;
      if (!accept) {
        // Metropolis criterion; scale by the magnitude of the current
        // value so the schedule is insensitive to objective units.
        const double scale =
            std::max({std::abs(current_value), std::abs(candidate_value),
                      1e-12});
        accept = rng.uniform() < std::exp(-delta / (temperature * scale));
      }
      if (accept) {
        if (delta < 0.0) ++result.improving_moves;
        ++result.accepted_moves;
        current = std::move(candidate);
        current_value = candidate_value;
        if (current_value < result.best_value) {
          result.best_point = current;
          result.best_value = current_value;
        }
      }
      if (config.observer) {
        AnnealStep step;
        step.chain = chain;
        step.iteration = it;
        step.temperature = temperature;
        step.candidate_value = candidate_value;
        step.current_value = current_value;
        step.best_value = result.best_value;
        step.accepted = accept;
        step.improved = accept && delta < 0.0;
        config.observer(step);
      }
      temperature *= ratio;
    }
  }
  return result;
}

}  // namespace scal::opt
