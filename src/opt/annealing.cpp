#include "opt/annealing.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "exec/seed_sequence.hpp"
#include "exec/thread_pool.hpp"

namespace scal::opt {

namespace {

/// What one chain records per evaluation; replayed to the observer in
/// chain-major order after the join, with the global best column
/// recomputed there (a chain cannot know its siblings' values).
struct StepRecord {
  std::size_t iteration = 0;
  double temperature = 0.0;
  double candidate_value = 0.0;
  double current_value = 0.0;
  double chain_best = 0.0;  ///< best within this chain so far
  bool accepted = false;
  bool improved = false;
};

struct ChainResult {
  Point best_point;
  double best_value = 0.0;
  std::size_t evaluations = 0;
  std::size_t accepted_moves = 0;
  std::size_t improving_moves = 0;
  std::vector<StepRecord> steps;  ///< only filled when an observer is set
};

ChainResult run_chain(const Space& space, const Objective& objective,
                      const AnnealingConfig& config, std::size_t chain,
                      std::size_t per_chain, double ratio,
                      std::uint64_t seed, bool record_steps) {
  util::RandomStream rng(seed);
  ChainResult result;
  if (record_steps) result.steps.reserve(per_chain);

  Point current = (chain == 0 && config.initial_point)
                      ? space.clamp(*config.initial_point)
                      : (chain == 0 ? space.center() : space.sample(rng));
  double current_value = objective(current);
  ++result.evaluations;
  result.best_point = current;
  result.best_value = current_value;
  if (record_steps) {
    StepRecord step;
    step.iteration = 0;
    step.temperature = config.initial_temperature;
    step.candidate_value = current_value;
    step.current_value = current_value;
    step.chain_best = result.best_value;
    step.accepted = true;
    result.steps.push_back(step);
  }

  double temperature = config.initial_temperature;
  for (std::size_t it = 1; it < per_chain; ++it) {
    Point candidate = space.neighbor(current, temperature, rng);
    const double candidate_value = objective(candidate);
    ++result.evaluations;

    const double delta = candidate_value - current_value;
    bool accept = delta <= 0.0;
    if (!accept) {
      // Metropolis criterion; scale by the magnitude of the current
      // value so the schedule is insensitive to objective units.
      const double scale =
          std::max({std::abs(current_value), std::abs(candidate_value),
                    1e-12});
      accept = rng.uniform() < std::exp(-delta / (temperature * scale));
    }
    if (accept) {
      if (delta < 0.0) ++result.improving_moves;
      ++result.accepted_moves;
      current = std::move(candidate);
      current_value = candidate_value;
      if (current_value < result.best_value) {
        result.best_point = current;
        result.best_value = current_value;
      }
    }
    if (record_steps) {
      StepRecord step;
      step.iteration = it;
      step.temperature = temperature;
      step.candidate_value = candidate_value;
      step.current_value = current_value;
      step.chain_best = result.best_value;
      step.accepted = accept;
      step.improved = accept && delta < 0.0;
      result.steps.push_back(step);
    }
    temperature *= ratio;
  }
  return result;
}

}  // namespace

AnnealingResult anneal(const Space& space, const Objective& objective,
                       const AnnealingConfig& config,
                       util::RandomStream& rng) {
  if (space.size() == 0) {
    throw std::invalid_argument("anneal: empty space");
  }
  if (config.iterations == 0 || config.restarts == 0) {
    throw std::invalid_argument("anneal: zero budget");
  }
  if (!(config.initial_temperature >= config.final_temperature) ||
      !(config.final_temperature > 0.0)) {
    throw std::invalid_argument("anneal: bad temperature schedule");
  }

  const std::size_t per_chain =
      std::max<std::size_t>(1, config.iterations / config.restarts);
  // Geometric cooling ratio hitting final_temperature at chain end.
  const double ratio =
      per_chain > 1
          ? std::pow(config.final_temperature / config.initial_temperature,
                     1.0 / static_cast<double>(per_chain - 1))
          : 1.0;

  // One draw roots every chain's substream; which worker runs a chain
  // (or whether any pool exists at all) can no longer reach the RNG.
  const exec::SeedSequence seeds(rng.bits());

  // Per-chain objectives are made up front, on this thread, in order.
  std::vector<Objective> chain_objectives;
  if (config.chain_objective) {
    chain_objectives.reserve(config.restarts);
    for (std::size_t c = 0; c < config.restarts; ++c) {
      chain_objectives.push_back(config.chain_objective(c));
    }
  }

  const bool record_steps = static_cast<bool>(config.observer);
  std::vector<ChainResult> chains(config.restarts);
  exec::parallel_for(
      config.pool, config.restarts, [&](std::size_t c) {
        const Objective& chain_objective =
            chain_objectives.empty() ? objective : chain_objectives[c];
        chains[c] = run_chain(space, chain_objective, config, c, per_chain,
                              ratio, seeds.at(c), record_steps);
      });

  // Deterministic reduction, chain-major: identical to the historical
  // serial loop's bookkeeping order.
  AnnealingResult result;
  bool have_best = false;
  for (std::size_t c = 0; c < config.restarts; ++c) {
    const ChainResult& chain = chains[c];
    if (config.observer) {
      const double previous_best =
          have_best ? result.best_value
                    : std::numeric_limits<double>::infinity();
      for (const StepRecord& rec : chain.steps) {
        AnnealStep step;
        step.chain = c;
        step.iteration = rec.iteration;
        step.temperature = rec.temperature;
        step.candidate_value = rec.candidate_value;
        step.current_value = rec.current_value;
        step.best_value = std::min(previous_best, rec.chain_best);
        step.accepted = rec.accepted;
        step.improved = rec.improved;
        config.observer(step);
      }
    }
    result.evaluations += chain.evaluations;
    result.accepted_moves += chain.accepted_moves;
    result.improving_moves += chain.improving_moves;
    if (!have_best || chain.best_value < result.best_value) {
      result.best_point = chain.best_point;
      result.best_value = chain.best_value;
      have_best = true;
    }
  }
  return result;
}

}  // namespace scal::opt
