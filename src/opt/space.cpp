#include "opt/space.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace scal::opt {

Space::Space(std::vector<Variable> vars) : vars_(std::move(vars)) {
  for (const Variable& v : vars_) {
    if (!(v.lo <= v.hi)) {
      throw std::invalid_argument("Space: lo > hi for " + v.name);
    }
    if (v.log_scale && !(v.lo > 0.0)) {
      throw std::invalid_argument("Space: log-scale needs lo > 0 for " +
                                  v.name);
    }
  }
}

std::size_t Space::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i].name == name) return i;
  }
  throw std::out_of_range("Space: no variable named " + name);
}

Point Space::clamp(Point p) const {
  if (p.size() != vars_.size()) {
    throw std::invalid_argument("Space::clamp: dimension mismatch");
  }
  for (std::size_t i = 0; i < p.size(); ++i) {
    p[i] = std::clamp(p[i], vars_[i].lo, vars_[i].hi);
    if (vars_[i].kind == VarKind::kInteger) {
      p[i] = std::clamp(std::round(p[i]), vars_[i].lo, vars_[i].hi);
    }
  }
  return p;
}

bool Space::contains(const Point& p) const {
  if (p.size() != vars_.size()) return false;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] < vars_[i].lo || p[i] > vars_[i].hi) return false;
    if (vars_[i].kind == VarKind::kInteger && p[i] != std::round(p[i])) {
      return false;
    }
  }
  return true;
}

Point Space::sample(util::RandomStream& rng) const {
  Point p(vars_.size());
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    const Variable& v = vars_[i];
    if (v.log_scale) {
      p[i] = std::exp(rng.uniform(std::log(v.lo), std::log(v.hi)));
    } else {
      p[i] = rng.uniform(v.lo, v.hi);
    }
  }
  return clamp(std::move(p));
}

Point Space::neighbor(const Point& p, double temperature,
                      util::RandomStream& rng) const {
  if (p.size() != vars_.size()) {
    throw std::invalid_argument("Space::neighbor: dimension mismatch");
  }
  Point q = p;
  // Perturb each coordinate with probability 1/2 (at least one always).
  bool moved = false;
  for (std::size_t i = 0; i < q.size(); ++i) {
    if (!rng.bernoulli(0.5)) continue;
    moved = true;
    const Variable& v = vars_[i];
    if (v.log_scale) {
      const double span = std::log(v.hi) - std::log(v.lo);
      q[i] = std::exp(std::log(std::max(q[i], v.lo)) +
                      rng.normal(0.0, 0.3 * temperature * span));
    } else {
      const double span = v.hi - v.lo;
      q[i] += rng.normal(0.0, 0.3 * temperature * std::max(span, 1e-12));
    }
    if (v.kind == VarKind::kInteger && q[i] == p[i]) {
      // Integer variables need a minimum step of one.
      q[i] += rng.bernoulli(0.5) ? 1.0 : -1.0;
    }
  }
  if (!moved) {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(q.size()) - 1));
    const Variable& v = vars_[i];
    const double span = v.hi - v.lo;
    q[i] += rng.normal(0.0, 0.3 * temperature * std::max(span, 1e-12));
  }
  return clamp(std::move(q));
}

Point Space::center() const {
  Point p(vars_.size());
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    const Variable& v = vars_[i];
    p[i] = v.log_scale ? std::sqrt(v.lo * v.hi) : 0.5 * (v.lo + v.hi);
  }
  return clamp(std::move(p));
}

}  // namespace scal::opt
