#pragma once
// Baseline searches used by the tuner-ablation bench: pure random search
// and full-factorial grid search over the same Space/Objective interface
// as the annealer.

#include "opt/annealing.hpp"

namespace scal::opt {

struct SearchResult {
  Point best_point;
  double best_value = 0.0;
  std::size_t evaluations = 0;
};

/// Uniform random sampling with the given evaluation budget.
SearchResult random_search(const Space& space, const Objective& objective,
                           std::size_t evaluations, util::RandomStream& rng);

/// Full-factorial grid with `points_per_dim` levels per variable
/// (integer variables enumerate every value if the range is smaller).
SearchResult grid_search(const Space& space, const Objective& objective,
                         std::size_t points_per_dim);

}  // namespace scal::opt
