#include "opt/search.hpp"

#include <cmath>
#include <stdexcept>

namespace scal::opt {

SearchResult random_search(const Space& space, const Objective& objective,
                           std::size_t evaluations, util::RandomStream& rng) {
  if (evaluations == 0) throw std::invalid_argument("random_search: budget 0");
  SearchResult result;
  for (std::size_t i = 0; i < evaluations; ++i) {
    Point p = space.sample(rng);
    const double v = objective(p);
    ++result.evaluations;
    if (i == 0 || v < result.best_value) {
      result.best_value = v;
      result.best_point = std::move(p);
    }
  }
  return result;
}

namespace {

/// Levels for one variable: evenly spaced (log-spaced if log_scale),
/// de-duplicated for narrow integer ranges.
std::vector<double> levels_for(const Variable& v, std::size_t n) {
  std::vector<double> out;
  if (v.kind == VarKind::kInteger) {
    const auto span = static_cast<std::size_t>(v.hi - v.lo) + 1;
    if (span <= n) {
      for (double x = v.lo; x <= v.hi; x += 1.0) out.push_back(x);
      return out;
    }
  }
  if (n == 1) {
    out.push_back(v.log_scale ? std::sqrt(v.lo * v.hi) : 0.5 * (v.lo + v.hi));
    return out;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    double x = v.log_scale
                   ? std::exp(std::log(v.lo) +
                              t * (std::log(v.hi) - std::log(v.lo)))
                   : v.lo + t * (v.hi - v.lo);
    if (v.kind == VarKind::kInteger) x = std::round(x);
    if (out.empty() || out.back() != x) out.push_back(x);
  }
  return out;
}

}  // namespace

SearchResult grid_search(const Space& space, const Objective& objective,
                         std::size_t points_per_dim) {
  if (points_per_dim == 0) {
    throw std::invalid_argument("grid_search: zero points per dim");
  }
  std::vector<std::vector<double>> levels;
  levels.reserve(space.size());
  for (const Variable& v : space.variables()) {
    levels.push_back(levels_for(v, points_per_dim));
  }

  SearchResult result;
  Point p(space.size());
  std::vector<std::size_t> idx(space.size(), 0);
  bool first = true;
  for (;;) {
    for (std::size_t d = 0; d < space.size(); ++d) p[d] = levels[d][idx[d]];
    const double v = objective(p);
    ++result.evaluations;
    if (first || v < result.best_value) {
      first = false;
      result.best_value = v;
      result.best_point = p;
    }
    // Odometer increment.
    std::size_t d = 0;
    while (d < space.size()) {
      if (++idx[d] < levels[d].size()) break;
      idx[d] = 0;
      ++d;
    }
    if (d == space.size()) break;
  }
  return result;
}

}  // namespace scal::opt
