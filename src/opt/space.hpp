#pragma once
// Box-constrained mixed continuous/integer search space shared by the
// optimizers.  The scalability framework tunes "scaling enablers"
// (status-update interval, neighborhood size, link delay, volunteering
// interval) over such a space.

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace scal::opt {

enum class VarKind { kContinuous, kInteger };

struct Variable {
  std::string name;
  VarKind kind = VarKind::kContinuous;
  double lo = 0.0;
  double hi = 1.0;
  /// If true, neighbor proposals move multiplicatively (log-space), which
  /// suits scale-like quantities such as update intervals.
  bool log_scale = false;
};

/// A point in the space; integers are stored as rounded doubles.
using Point = std::vector<double>;

class Space {
 public:
  Space() = default;
  explicit Space(std::vector<Variable> vars);

  std::size_t size() const noexcept { return vars_.size(); }
  const Variable& var(std::size_t i) const { return vars_.at(i); }
  const std::vector<Variable>& variables() const noexcept { return vars_; }

  /// Index of the variable with the given name; throws if absent.
  std::size_t index_of(const std::string& name) const;

  /// Clamp to bounds and round integer coordinates.
  Point clamp(Point p) const;
  bool contains(const Point& p) const;

  /// Uniform random point (log-uniform on log_scale variables).
  Point sample(util::RandomStream& rng) const;

  /// Gaussian-step neighbor of `p`; `temperature` in (0, 1] scales the
  /// step size relative to each variable's range.
  Point neighbor(const Point& p, double temperature,
                 util::RandomStream& rng) const;

  /// Midpoint-ish default (geometric mean for log-scale variables).
  Point center() const;

 private:
  std::vector<Variable> vars_;
};

}  // namespace scal::opt
