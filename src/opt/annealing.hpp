#pragma once
// Simulated annealing (Kirkpatrick-style with geometric cooling and
// optional restarts).  The paper tunes the RMS scaling enablers with "a
// simulated annealing type of search" [2, 12, 5]; this is that search.
//
// Restart chains are independent searches: each chain draws from its
// own RNG substream (derived from one draw of the caller's stream via
// exec::SeedSequence) and all cross-chain reductions — best-of point
// selection, move counters, the observer's global-best column — happen
// in chain-index order after every chain finished.  The result is
// therefore bit-identical whether the chains run serially or on a
// worker pool (docs/PARALLELISM.md).

#include <cstddef>
#include <functional>
#include <optional>

#include "opt/space.hpp"

namespace scal::exec {
class ThreadPool;
}

namespace scal::opt {

/// Objective to MINIMIZE.  Constraint handling (the efficiency band) is
/// done by the caller via penalties folded into the objective.
using Objective = std::function<double(const Point&)>;

/// Per-chain objective maker: called once per chain, on the caller's
/// thread, before any chain runs.  Lets stateful objectives (the tuner
/// tracks the best simulation per evaluation) keep one accumulator per
/// chain instead of sharing mutable state across workers.
using ObjectiveFactory = std::function<Objective(std::size_t chain)>;

/// One objective evaluation, as reported to AnnealingConfig::observer.
/// Defined here (not in obs) so opt stays free of telemetry deps; the
/// tuner layer converts these into obs::AnnealRecord rows.
struct AnnealStep {
  std::size_t chain = 0;
  std::size_t iteration = 0;  ///< 0 = the chain's initial evaluation
  double temperature = 0.0;
  double candidate_value = 0.0;  ///< value of the point just evaluated
  double current_value = 0.0;    ///< chain state after the accept decision
  double best_value = 0.0;       ///< global best across chains so far
  bool accepted = false;
  bool improved = false;  ///< accepted and strictly better than current
};

/// Per-evaluation telemetry hook.  Called once per objective evaluation,
/// always on the caller's thread and in deterministic (chain-major)
/// order, after the chains ran; must not mutate search state (it sees
/// values, not points).
using AnnealObserver = std::function<void(const AnnealStep&)>;

struct AnnealingConfig {
  std::size_t iterations = 400;    ///< total objective evaluations
  double initial_temperature = 1.0;
  double final_temperature = 0.01;
  std::size_t restarts = 1;        ///< independent chains (best-of)
  /// Optional warm start; defaults to Space::center().
  std::optional<Point> initial_point;
  /// Optional per-iteration observer (empty = no telemetry).
  AnnealObserver observer;
  /// Optional worker pool; chains run concurrently on pool workers plus
  /// the calling thread.  Null = serial.  Either way the result is
  /// bit-identical.  With a pool and no chain_objective, `objective`
  /// must be safe to call from several threads at once.
  exec::ThreadPool* pool = nullptr;
  /// Optional per-chain objective maker; when set, it takes precedence
  /// over the `objective` argument of anneal().
  ObjectiveFactory chain_objective;
};

struct AnnealingResult {
  Point best_point;
  double best_value = 0.0;
  std::size_t evaluations = 0;
  std::size_t accepted_moves = 0;
  std::size_t improving_moves = 0;
};

/// Runs config.restarts independent chains and keeps the best point
/// (ties broken toward the lower chain index).  `rng` is consumed for
/// exactly one draw, which roots every chain's substream.
AnnealingResult anneal(const Space& space, const Objective& objective,
                       const AnnealingConfig& config,
                       util::RandomStream& rng);

}  // namespace scal::opt
