#pragma once
// Simulated annealing (Kirkpatrick-style with geometric cooling and
// optional restarts).  The paper tunes the RMS scaling enablers with "a
// simulated annealing type of search" [2, 12, 5]; this is that search.

#include <functional>
#include <optional>

#include "opt/space.hpp"

namespace scal::opt {

/// Objective to MINIMIZE.  Constraint handling (the efficiency band) is
/// done by the caller via penalties folded into the objective.
using Objective = std::function<double(const Point&)>;

struct AnnealingConfig {
  std::size_t iterations = 400;    ///< total objective evaluations
  double initial_temperature = 1.0;
  double final_temperature = 0.01;
  std::size_t restarts = 1;        ///< independent chains (best-of)
  /// Optional warm start; defaults to Space::center().
  std::optional<Point> initial_point;
};

struct AnnealingResult {
  Point best_point;
  double best_value = 0.0;
  std::size_t evaluations = 0;
  std::size_t accepted_moves = 0;
  std::size_t improving_moves = 0;
};

AnnealingResult anneal(const Space& space, const Objective& objective,
                       const AnnealingConfig& config,
                       util::RandomStream& rng);

}  // namespace scal::opt
