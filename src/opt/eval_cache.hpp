#pragma once
// Deterministic memoization of objective evaluations over a discrete
// search space.  The annealing space is quantized, so points repeat —
// within one tune (late low-temperature phases revisit the incumbent's
// neighborhood, restart chains collide, the warm anchor equals chain
// 0's start) and across tunes that share a cache (adjacent scale
// factors along a scaling path, overlapping path-search splits).  Keys
// are the exact (configuration digest, point) pair — no tolerance — so
// a hit can only ever return the value the evaluation would have
// produced, and caching is an optimization, never an approximation.
//
// Determinism protocol: inserts are first-evaluator-wins.  With a
// worker pool, two chains may evaluate the same key concurrently; both
// compute the same value (evaluations are deterministic functions of
// the key), and whichever insert lands first simply keeps its epoch
// stamp.  Every lookup reports whether the key was already present
// before the current tune began (`prior_epoch`), which is a
// deterministic fact independent of intra-tune scheduling — the tuner
// derives its logical hit statistics and `cached` telemetry flags from
// that plus a serial replay of its own evaluation order, never from
// racy physical hit counts.

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace scal::opt {

/// Exact identity of one objective evaluation: the digest pins every
/// simulation input outside the search space (topology, workload, seed,
/// faults, ...); the point is the quantized search-space coordinate.
struct EvalKey {
  std::array<std::uint64_t, 2> digest{};
  std::vector<double> point;

  bool operator==(const EvalKey& other) const noexcept {
    return digest == other.digest && point == other.point;
  }
};

struct EvalKeyHash {
  std::size_t operator()(const EvalKey& key) const noexcept {
    std::uint64_t h = key.digest[0] ^ (key.digest[1] * 0x9E3779B97F4A7C15ull);
    for (const double coordinate : key.point) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &coordinate, sizeof(bits));
      h ^= bits + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    }
    return static_cast<std::size_t>(h);
  }
};

/// Thread-safe first-evaluator-wins memoization table.  `Value` must be
/// copyable; lookups return copies so hits never alias shared state.
template <typename Value>
class EvalCache {
 public:
  struct Probe {
    /// The stored value, if this key has one.
    std::optional<Value> value;
    /// True when the key was inserted before the current epoch — i.e.
    /// by an earlier tune sharing this cache.  Scheduling-independent,
    /// unlike "was the value present at lookup time" at high job counts.
    bool prior_epoch = false;
  };

  /// Mark the start of a new tune.  Entries inserted from now on carry
  /// the new epoch; existing entries become `prior_epoch` hits.  Call
  /// between tunes only (not concurrently with lookups/inserts).
  void begin_epoch() {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++epoch_;
  }

  Probe lookup(const EvalKey& key) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    Probe probe;
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      probe.value = it->second.value;
      probe.prior_epoch = it->second.epoch < epoch_;
    }
    return probe;
  }

  /// First-evaluator-wins: if the key is already present the stored
  /// value AND its epoch stamp are kept, so concurrent duplicate
  /// evaluations and later re-inserts cannot perturb `prior_epoch`
  /// classification.
  void insert(const EvalKey& key, const Value& value) {
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_.try_emplace(key, Entry{value, epoch_});
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  std::uint64_t epoch() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return epoch_;
  }

  void clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    epoch_ = 0;
  }

 private:
  struct Entry {
    Value value;
    std::uint64_t epoch = 0;
  };

  mutable std::mutex mutex_;
  std::unordered_map<EvalKey, Entry, EvalKeyHash> entries_;
  std::uint64_t epoch_ = 0;
};

}  // namespace scal::opt
