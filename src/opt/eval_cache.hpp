#pragma once
// Deterministic memoization of objective evaluations over a discrete
// search space.  The annealing space is quantized, so points repeat —
// within one tune (late low-temperature phases revisit the incumbent's
// neighborhood, restart chains collide, the warm anchor equals chain
// 0's start) and across tunes that share a cache (adjacent scale
// factors along a scaling path, overlapping path-search splits).  Keys
// are the exact (configuration digest, point) pair — no tolerance — so
// a hit can only ever return the value the evaluation would have
// produced, and caching is an optimization, never an approximation.
//
// Determinism protocol: inserts are first-evaluator-wins.  With a
// worker pool, two chains may evaluate the same key concurrently; both
// compute the same value (evaluations are deterministic functions of
// the key), and whichever insert lands first simply keeps its epoch
// stamp.  Every lookup reports whether the key was already present
// before the current tune began (`prior_epoch`), which is a
// deterministic fact independent of intra-tune scheduling — the tuner
// derives its logical hit statistics and `cached` telemetry flags from
// that plus a serial replay of its own evaluation order, never from
// racy physical hit counts.
//
// In-flight dedup: acquire() extends the protocol with future-like
// entries.  The first caller on a missing key *claims* it (an entry
// holding no value yet, stamped with the current epoch exactly as its
// insert would have been) and must fulfill() or abandon() it; later
// concurrent callers block until the value lands instead of recomputing
// it.  Because claims carry the same epoch stamp first-insert-wins
// would have produced, `prior_epoch` classification — and therefore the
// tuner's `cached` flags and hit counters — is bit-identical at any
// worker count.  lookup()/insert() remain for callers that must never
// block (the value-caching-off arm still inserts for cross-tune reuse).
//
// Persistence: preload() seeds ready entries from disk (marked
// `from_disk` so reuse telemetry can report disk hits) and snapshot()
// exports the ready entries for a serializer; see core/eval_store.hpp
// for the on-disk format and the code-version invalidation rule.

#include <array>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace scal::opt {

/// Exact identity of one objective evaluation: the digest pins every
/// simulation input outside the search space (topology, workload, seed,
/// faults, ...); the point is the quantized search-space coordinate.
struct EvalKey {
  std::array<std::uint64_t, 2> digest{};
  std::vector<double> point;

  bool operator==(const EvalKey& other) const noexcept {
    return digest == other.digest && point == other.point;
  }
};

struct EvalKeyHash {
  std::size_t operator()(const EvalKey& key) const noexcept {
    std::uint64_t h = key.digest[0] ^ (key.digest[1] * 0x9E3779B97F4A7C15ull);
    for (const double coordinate : key.point) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &coordinate, sizeof(bits));
      h ^= bits + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    }
    return static_cast<std::size_t>(h);
  }
};

/// Thread-safe first-evaluator-wins memoization table.  `Value` must be
/// copyable; lookups return copies so hits never alias shared state.
template <typename Value>
class EvalCache {
 public:
  struct Probe {
    /// The stored value, if this key has one.
    std::optional<Value> value;
    /// True when the key was inserted before the current epoch — i.e.
    /// by an earlier tune sharing this cache.  Scheduling-independent,
    /// unlike "was the value present at lookup time" at high job counts.
    bool prior_epoch = false;
  };

  /// Outcome of acquire(): exactly one of three shapes.
  ///   - value set:  a ready entry answered the key (maybe after a
  ///     wait); `waited`/`from_disk` say how it got there.
  ///   - owner:      this caller claimed the key and MUST fulfill() or
  ///     abandon() it, or waiters deadlock until abandon.
  struct Acquired {
    std::optional<Value> value;
    /// Same deterministic fact Probe reports; claims count as
    /// current-epoch entries, exactly like the insert they replace.
    bool prior_epoch = false;
    /// This caller owns the evaluation for the key.
    bool owner = false;
    /// The value came from another thread's in-flight evaluation.
    bool waited = false;
    /// The value was preloaded from a persistent cache file.
    bool from_disk = false;
  };

  /// Mark the start of a new tune.  Entries inserted from now on carry
  /// the new epoch; existing entries become `prior_epoch` hits.  Call
  /// between tunes only (not concurrently with lookups/inserts).
  void begin_epoch() {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++epoch_;
  }

  Probe lookup(const EvalKey& key) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    Probe probe;
    const auto it = entries_.find(key);
    if (it != entries_.end() && it->second.value.has_value()) {
      probe.value = it->second.value;
      probe.prior_epoch = it->second.epoch < epoch_;
    }
    return probe;
  }

  /// First-evaluator-wins: if the key is already present the stored
  /// value AND its epoch stamp are kept, so concurrent duplicate
  /// evaluations and later re-inserts cannot perturb `prior_epoch`
  /// classification.  Fulfills (and wakes waiters of) an in-flight
  /// entry claimed via acquire().
  void insert(const EvalKey& key, const Value& value) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      const auto [it, inserted] = entries_.try_emplace(key, Entry{});
      if (inserted) {
        it->second.epoch = epoch_;
      } else if (it->second.value.has_value()) {
        return;  // first value wins
      }
      it->second.value = value;
    }
    ready_.notify_all();
  }

  /// Claim, hit, or wait (see Acquired).  Blocking happens only when
  /// another thread holds the claim; the wait ends when that owner
  /// fulfills (value returned) or abandons (this caller re-claims).
  Acquired acquire(const EvalKey& key) {
    std::unique_lock<std::mutex> lock(mutex_);
    bool waited = false;
    for (;;) {
      const auto [it, inserted] = entries_.try_emplace(key, Entry{});
      if (inserted) {
        // Claimed: stamp with the current epoch, exactly the stamp the
        // eventual first insert would have carried.
        it->second.epoch = epoch_;
        Acquired out;
        out.owner = true;
        out.waited = waited;
        return out;
      }
      if (it->second.value.has_value()) {
        Acquired out;
        out.value = it->second.value;
        out.prior_epoch = it->second.epoch < epoch_;
        out.waited = waited;
        out.from_disk = it->second.from_disk;
        if (it->second.from_disk) ++disk_hits_;
        return out;
      }
      // In flight elsewhere: wait for fulfill (value appears) or
      // abandon (entry vanishes, loop re-claims).  Counted once per
      // blocking acquire, so the tally reads "evaluations saved".
      if (!waited) {
        waited = true;
        ++in_flight_waits_;
      }
      ready_.wait(lock, [&] {
        const auto again = entries_.find(key);
        return again == entries_.end() || again->second.value.has_value();
      });
    }
  }

  /// Publish the owner's result and wake waiters.  First value wins
  /// (identical by determinism anyway); the claim's epoch stamp is kept.
  void fulfill(const EvalKey& key, const Value& value) { insert(key, value); }

  /// Release a claim without a value (owner's evaluation threw) so a
  /// waiter can re-claim.  No-op on ready or absent keys.
  void abandon(const EvalKey& key) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      const auto it = entries_.find(key);
      if (it == entries_.end() || it->second.value.has_value()) return;
      entries_.erase(it);
    }
    ready_.notify_all();
  }

  /// Seed a ready entry from a persistent cache file.  First-wins like
  /// insert(); stamped with the current epoch, so preloading before the
  /// first begin_epoch() makes warm entries `prior_epoch` for every
  /// tune — identical classification to a cold run's own inserts.
  void preload(const EvalKey& key, const Value& value) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = entries_.try_emplace(key, Entry{});
    if (!inserted) return;
    it->second.value = value;
    it->second.epoch = epoch_;
    it->second.from_disk = true;
    ++preloaded_;
  }

  /// Every ready (key, value) pair, for the persistent serializer.
  /// In-flight claims are skipped.  Unordered; the serializer sorts.
  std::vector<std::pair<EvalKey, Value>> snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<EvalKey, Value>> out;
    out.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) {
      if (entry.value.has_value()) out.emplace_back(key, *entry.value);
    }
    return out;
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  std::uint64_t epoch() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return epoch_;
  }

  /// Times an acquire() blocked on another thread's evaluation.
  std::uint64_t in_flight_waits() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return in_flight_waits_;
  }

  /// Times an acquire() was answered by a preloaded (disk) entry.
  std::uint64_t disk_hits() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return disk_hits_;
  }

  /// Entries seeded via preload().
  std::uint64_t preloaded() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return preloaded_;
  }

  void clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    epoch_ = 0;
    in_flight_waits_ = 0;
    disk_hits_ = 0;
    preloaded_ = 0;
  }

 private:
  struct Entry {
    /// Empty while the claiming owner is still evaluating (in flight).
    std::optional<Value> value;
    std::uint64_t epoch = 0;
    bool from_disk = false;
  };

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::unordered_map<EvalKey, Entry, EvalKeyHash> entries_;
  std::uint64_t epoch_ = 0;
  std::uint64_t in_flight_waits_ = 0;
  std::uint64_t disk_hits_ = 0;
  std::uint64_t preloaded_ = 0;
};

}  // namespace scal::opt
