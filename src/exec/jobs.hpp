#pragma once
// Job-count resolution shared by benches, examples, and tests:
//   --jobs N   >   SCAL_JOBS=N   >   default 1
// "hw" (flag or env value) means hardware_jobs().  Jobs count lanes, so
// jobs = 4 pairs with a ThreadPool of 3 workers plus the caller.

#include <cstddef>
#include <string>

namespace scal::exec {

/// std::thread::hardware_concurrency(), never less than 1.
std::size_t hardware_jobs() noexcept;

/// Parse a job-count string: a positive integer, or "hw"/"auto" for
/// hardware_jobs().  Returns `fallback` on anything else.
std::size_t parse_jobs(const std::string& text, std::size_t fallback);

/// SCAL_JOBS from the environment, or `fallback` when unset/invalid.
std::size_t env_jobs(std::size_t fallback = 1);

}  // namespace scal::exec
