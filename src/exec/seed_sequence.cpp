#include "exec/seed_sequence.hpp"

#include "util/rng.hpp"

namespace scal::exec {

std::uint64_t SeedSequence::at(std::uint64_t index) const noexcept {
  // Jump the splitmix64 state directly to position `index` (the
  // increment is a fixed odd constant, so position i is root + i*gamma),
  // then take one step: cheap O(1) random access into the stream.
  std::uint64_t state = root_ + index * 0x9E3779B97F4A7C15ULL;
  return util::splitmix64(state);
}

}  // namespace scal::exec
