#pragma once
// SeedSequence: schedule-independent RNG substream derivation for
// parallel task fan-out.
//
// Every parallel construct in this codebase (annealing restart chains,
// seed replication, per-RMS sweeps) gives task i the seed `seq.at(i)`,
// derived purely from (root, i) by a splitmix64 step.  A task's stream
// therefore never depends on which worker ran it, in what order, or how
// many draws its siblings consumed — which is what makes `--jobs 1` and
// `--jobs N` bit-identical (docs/PARALLELISM.md).

#include <cstdint>

namespace scal::exec {

class SeedSequence {
 public:
  explicit SeedSequence(std::uint64_t root) noexcept : root_(root) {}

  std::uint64_t root() const noexcept { return root_; }

  /// Seed of substream `index`: the splitmix64 output at position
  /// `index + 1` of the stream rooted at `root`.  Stateless; any index
  /// may be queried in any order from any thread.
  std::uint64_t at(std::uint64_t index) const noexcept;

  /// A nested sequence for task `index`'s own fan-out (e.g. one
  /// replication task spawning per-component streams).
  SeedSequence child(std::uint64_t index) const noexcept {
    return SeedSequence(at(index));
  }

 private:
  std::uint64_t root_;
};

}  // namespace scal::exec
