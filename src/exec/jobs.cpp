#include "exec/jobs.hpp"

#include <cstdlib>
#include <thread>

#include "util/env.hpp"

namespace scal::exec {

std::size_t hardware_jobs() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t parse_jobs(const std::string& text, std::size_t fallback) {
  if (text == "hw" || text == "auto") return hardware_jobs();
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || value < 1) return fallback;
  return static_cast<std::size_t>(value);
}

std::size_t env_jobs(std::size_t fallback) {
  const std::string text = util::env_or("SCAL_JOBS", "");
  if (text.empty()) return fallback;
  return parse_jobs(text, fallback);
}

}  // namespace scal::exec
