#pragma once
// Deterministic parallel execution: a fixed-size worker ThreadPool plus
// structured fork/join (TaskGroup) and a parallel_for loop.
//
// The design rules (docs/PARALLELISM.md):
//   * Parallelism never changes results.  Tasks write into
//     pre-allocated, index-addressed slots; every reduction runs on the
//     caller's thread in task-index order after the join.
//   * Waiting helps.  TaskGroup::wait() executes still-queued tasks of
//     its own group inline, so nested parallel_for over one shared pool
//     cannot deadlock: a blocked waiter is only ever waiting on tasks
//     that some thread is actively running.
//   * The pool is non-owning plumbing, threaded through configs like the
//     obs::Telemetry handle: a null pool (or size 0) means "run serial",
//     and the serial path is the same code with the loop inlined.
//
// Convention: a pool of W workers plus the participating caller gives
// W + 1 concurrent lanes, so `--jobs N` maps to ThreadPool(N - 1).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace scal::exec {

/// Fixed-size worker pool.  submit() is thread-safe; tasks still queued
/// at destruction are executed (never silently dropped).
class ThreadPool {
 public:
  /// Spawns `workers` threads.  A pool of 0 workers is valid: submit()
  /// then runs tasks inline, which keeps caller code branch-free.
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  void submit(std::function<void()> task);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Structured fork/join over a ThreadPool.  run() submits a task; wait()
/// blocks until every task of this group finished, executing any of them
/// that no worker has claimed yet inline (help-first join), and rethrows
/// the first exception a task raised.  The group must outlive neither
/// wait() nor the pool; tasks must not outlive the data they capture.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool);
  ~TaskGroup();  // joins the group, swallowing any task exception

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void run(std::function<void()> fn);
  void wait();

 private:
  struct Entry;
  struct Shared;
  static void run_claimed(const std::shared_ptr<Entry>& entry,
                          const std::shared_ptr<Shared>& shared);
  void wait_no_throw() noexcept;

  ThreadPool& pool_;
  std::vector<std::shared_ptr<Entry>> entries_;
  std::shared_ptr<Shared> shared_;
};

/// Run body(0) .. body(n - 1), distributing iterations over the pool's
/// workers plus the calling thread.  Iterations are claimed dynamically,
/// so the assignment of index to thread is nondeterministic — which is
/// why callers must keep bodies independent (slot-per-index writes) and
/// reduce after the join.  A null or empty pool runs the plain serial
/// loop.  The first exception thrown by a body stops the distribution of
/// further iterations and is rethrown here.
void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

}  // namespace scal::exec
