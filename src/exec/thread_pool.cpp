#include "exec/thread_pool.hpp"

#include <atomic>
#include <utility>

namespace scal::exec {

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // Workers drain the queue before exiting; anything still here was
  // submitted to a zero-worker pool after conceptual shutdown — run it
  // so no task is ever dropped.
  while (!queue_.empty()) {
    auto task = std::move(queue_.front());
    queue_.pop_front();
    task();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();  // zero-worker pool: degenerate serial execution
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

// A group task lives in two places: the pool queue (as a claiming
// wrapper) and the group's entry list (so wait() can steal unclaimed
// work and run it inline).  Whoever flips `claimed` first executes the
// task exactly once; completion is counted on the Shared block, which
// the wrappers keep alive by shared_ptr so a group may be destroyed
// while stale (already-claimed) wrappers still sit in the queue.
struct TaskGroup::Entry {
  std::function<void()> fn;
  std::atomic<bool> claimed{false};
};

struct TaskGroup::Shared {
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t finished = 0;
  std::exception_ptr error;
};

TaskGroup::TaskGroup(ThreadPool& pool)
    : pool_(pool), shared_(std::make_shared<Shared>()) {}

TaskGroup::~TaskGroup() { wait_no_throw(); }

void TaskGroup::run_claimed(const std::shared_ptr<Entry>& entry,
                            const std::shared_ptr<Shared>& shared) {
  try {
    entry->fn();
  } catch (...) {
    std::lock_guard<std::mutex> lock(shared->mutex);
    if (!shared->error) shared->error = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lock(shared->mutex);
    ++shared->finished;
  }
  shared->cv.notify_all();
}

void TaskGroup::run(std::function<void()> fn) {
  auto entry = std::make_shared<Entry>();
  entry->fn = std::move(fn);
  entries_.push_back(entry);
  pool_.submit([entry, shared = shared_] {
    if (entry->claimed.exchange(true)) return;  // wait() got here first
    run_claimed(entry, shared);
  });
}

void TaskGroup::wait() {
  // Help first: claim and run everything no worker has started.
  for (const auto& entry : entries_) {
    if (!entry->claimed.exchange(true)) {
      run_claimed(entry, shared_);
    }
  }
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(shared_->mutex);
    shared_->cv.wait(lock, [this] {
      return shared_->finished == entries_.size();
    });
    error = shared_->error;
    shared_->error = nullptr;
  }
  entries_.clear();
  {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    shared_->finished = 0;
  }
  if (error) std::rethrow_exception(error);
}

void TaskGroup::wait_no_throw() noexcept {
  try {
    wait();
  } catch (...) {
    // Destructor path: the exception was already lost to the caller.
  }
}

void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (pool == nullptr || pool->size() == 0 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Dynamic claiming: helpers and the caller pull the next index from a
  // shared counter.  Result determinism is the caller's contract (write
  // into slot i, reduce in index order after this returns).
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto failed = std::make_shared<std::atomic<bool>>(false);
  auto drain = [next, failed, n, &body] {
    std::size_t i;
    while (!failed->load(std::memory_order_relaxed) &&
           (i = next->fetch_add(1, std::memory_order_relaxed)) < n) {
      try {
        body(i);
      } catch (...) {
        failed->store(true, std::memory_order_relaxed);
        throw;  // TaskGroup records the first exception
      }
    }
  };

  TaskGroup group(*pool);
  const std::size_t helpers = std::min(pool->size(), n - 1);
  for (std::size_t h = 0; h < helpers; ++h) group.run(drain);
  drain();  // the caller is a full lane, not just a waiter
  group.wait();
}

}  // namespace scal::exec
