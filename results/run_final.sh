#!/bin/sh
cd /root/repo/results
for f in fig2_scale_network fig3_scale_service_rate fig4_scale_estimators fig5_scale_lp fig6_throughput fig7_response_time tables_config ext_hierarchical ext_heterogeneity ext_path_search ablation_suppression ablation_tuner ablation_topology ablation_replication; do
  SCAL_BENCH_CSV=/root/repo/results /root/repo/build/bench/$f > /root/repo/results/$f.txt 2>&1
  echo "done $f $(date +%H:%M:%S)"
done
/root/repo/build/bench/micro_kernels --benchmark_min_time=0.2 > /root/repo/results/micro_kernels.txt 2>&1
echo "done micro_kernels $(date +%H:%M:%S)"
