# Empty compiler generated dependencies file for fig3_scale_service_rate.
# This may be replaced when dependencies are built.
