# Empty compiler generated dependencies file for ablation_suppression.
# This may be replaced when dependencies are built.
