# Empty dependencies file for fig5_scale_lp.
# This may be replaced when dependencies are built.
