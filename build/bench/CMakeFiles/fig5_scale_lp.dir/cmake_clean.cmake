file(REMOVE_RECURSE
  "CMakeFiles/fig5_scale_lp.dir/fig5_scale_lp.cpp.o"
  "CMakeFiles/fig5_scale_lp.dir/fig5_scale_lp.cpp.o.d"
  "fig5_scale_lp"
  "fig5_scale_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_scale_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
