# Empty compiler generated dependencies file for fig4_scale_estimators.
# This may be replaced when dependencies are built.
