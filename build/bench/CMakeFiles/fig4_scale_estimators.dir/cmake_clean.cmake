file(REMOVE_RECURSE
  "CMakeFiles/fig4_scale_estimators.dir/fig4_scale_estimators.cpp.o"
  "CMakeFiles/fig4_scale_estimators.dir/fig4_scale_estimators.cpp.o.d"
  "fig4_scale_estimators"
  "fig4_scale_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_scale_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
