file(REMOVE_RECURSE
  "CMakeFiles/fig7_response_time.dir/fig7_response_time.cpp.o"
  "CMakeFiles/fig7_response_time.dir/fig7_response_time.cpp.o.d"
  "fig7_response_time"
  "fig7_response_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_response_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
