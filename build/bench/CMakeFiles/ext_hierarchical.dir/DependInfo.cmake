
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_hierarchical.cpp" "bench/CMakeFiles/ext_hierarchical.dir/ext_hierarchical.cpp.o" "gcc" "bench/CMakeFiles/ext_hierarchical.dir/ext_hierarchical.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/scal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/scal_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/rms/CMakeFiles/scal_rms.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/scal_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/scal_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/scal_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scal_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scal_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
