file(REMOVE_RECURSE
  "CMakeFiles/ext_isoefficiency_function.dir/ext_isoefficiency_function.cpp.o"
  "CMakeFiles/ext_isoefficiency_function.dir/ext_isoefficiency_function.cpp.o.d"
  "ext_isoefficiency_function"
  "ext_isoefficiency_function.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_isoefficiency_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
