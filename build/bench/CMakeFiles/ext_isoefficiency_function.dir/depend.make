# Empty dependencies file for ext_isoefficiency_function.
# This may be replaced when dependencies are built.
