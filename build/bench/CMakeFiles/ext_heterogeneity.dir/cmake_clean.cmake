file(REMOVE_RECURSE
  "CMakeFiles/ext_heterogeneity.dir/ext_heterogeneity.cpp.o"
  "CMakeFiles/ext_heterogeneity.dir/ext_heterogeneity.cpp.o.d"
  "ext_heterogeneity"
  "ext_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
