# Empty compiler generated dependencies file for ext_heterogeneity.
# This may be replaced when dependencies are built.
