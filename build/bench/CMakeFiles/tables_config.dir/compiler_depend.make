# Empty compiler generated dependencies file for tables_config.
# This may be replaced when dependencies are built.
