file(REMOVE_RECURSE
  "CMakeFiles/tables_config.dir/tables_config.cpp.o"
  "CMakeFiles/tables_config.dir/tables_config.cpp.o.d"
  "tables_config"
  "tables_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tables_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
