# Empty dependencies file for ext_path_search.
# This may be replaced when dependencies are built.
