file(REMOVE_RECURSE
  "CMakeFiles/ext_path_search.dir/ext_path_search.cpp.o"
  "CMakeFiles/ext_path_search.dir/ext_path_search.cpp.o.d"
  "ext_path_search"
  "ext_path_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_path_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
