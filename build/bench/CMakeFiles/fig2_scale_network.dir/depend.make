# Empty dependencies file for fig2_scale_network.
# This may be replaced when dependencies are built.
