file(REMOVE_RECURSE
  "CMakeFiles/fig2_scale_network.dir/fig2_scale_network.cpp.o"
  "CMakeFiles/fig2_scale_network.dir/fig2_scale_network.cpp.o.d"
  "fig2_scale_network"
  "fig2_scale_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_scale_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
