file(REMOVE_RECURSE
  "CMakeFiles/rms_test.dir/rms/auction_unit_test.cpp.o"
  "CMakeFiles/rms_test.dir/rms/auction_unit_test.cpp.o.d"
  "CMakeFiles/rms_test.dir/rms/base_behavior_test.cpp.o"
  "CMakeFiles/rms_test.dir/rms/base_behavior_test.cpp.o.d"
  "CMakeFiles/rms_test.dir/rms/factory_test.cpp.o"
  "CMakeFiles/rms_test.dir/rms/factory_test.cpp.o.d"
  "CMakeFiles/rms_test.dir/rms/hierarchical_test.cpp.o"
  "CMakeFiles/rms_test.dir/rms/hierarchical_test.cpp.o.d"
  "CMakeFiles/rms_test.dir/rms/policies_test.cpp.o"
  "CMakeFiles/rms_test.dir/rms/policies_test.cpp.o.d"
  "CMakeFiles/rms_test.dir/rms/protocol_test.cpp.o"
  "CMakeFiles/rms_test.dir/rms/protocol_test.cpp.o.d"
  "CMakeFiles/rms_test.dir/rms/random_test.cpp.o"
  "CMakeFiles/rms_test.dir/rms/random_test.cpp.o.d"
  "CMakeFiles/rms_test.dir/rms/reserve_unit_test.cpp.o"
  "CMakeFiles/rms_test.dir/rms/reserve_unit_test.cpp.o.d"
  "CMakeFiles/rms_test.dir/rms/symmetric_unit_test.cpp.o"
  "CMakeFiles/rms_test.dir/rms/symmetric_unit_test.cpp.o.d"
  "rms_test"
  "rms_test.pdb"
  "rms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
