
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rms/auction_unit_test.cpp" "tests/CMakeFiles/rms_test.dir/rms/auction_unit_test.cpp.o" "gcc" "tests/CMakeFiles/rms_test.dir/rms/auction_unit_test.cpp.o.d"
  "/root/repo/tests/rms/base_behavior_test.cpp" "tests/CMakeFiles/rms_test.dir/rms/base_behavior_test.cpp.o" "gcc" "tests/CMakeFiles/rms_test.dir/rms/base_behavior_test.cpp.o.d"
  "/root/repo/tests/rms/factory_test.cpp" "tests/CMakeFiles/rms_test.dir/rms/factory_test.cpp.o" "gcc" "tests/CMakeFiles/rms_test.dir/rms/factory_test.cpp.o.d"
  "/root/repo/tests/rms/hierarchical_test.cpp" "tests/CMakeFiles/rms_test.dir/rms/hierarchical_test.cpp.o" "gcc" "tests/CMakeFiles/rms_test.dir/rms/hierarchical_test.cpp.o.d"
  "/root/repo/tests/rms/policies_test.cpp" "tests/CMakeFiles/rms_test.dir/rms/policies_test.cpp.o" "gcc" "tests/CMakeFiles/rms_test.dir/rms/policies_test.cpp.o.d"
  "/root/repo/tests/rms/protocol_test.cpp" "tests/CMakeFiles/rms_test.dir/rms/protocol_test.cpp.o" "gcc" "tests/CMakeFiles/rms_test.dir/rms/protocol_test.cpp.o.d"
  "/root/repo/tests/rms/random_test.cpp" "tests/CMakeFiles/rms_test.dir/rms/random_test.cpp.o" "gcc" "tests/CMakeFiles/rms_test.dir/rms/random_test.cpp.o.d"
  "/root/repo/tests/rms/reserve_unit_test.cpp" "tests/CMakeFiles/rms_test.dir/rms/reserve_unit_test.cpp.o" "gcc" "tests/CMakeFiles/rms_test.dir/rms/reserve_unit_test.cpp.o.d"
  "/root/repo/tests/rms/symmetric_unit_test.cpp" "tests/CMakeFiles/rms_test.dir/rms/symmetric_unit_test.cpp.o" "gcc" "tests/CMakeFiles/rms_test.dir/rms/symmetric_unit_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/scal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rms/CMakeFiles/scal_rms.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/scal_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/scal_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/scal_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/scal_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scal_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scal_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
