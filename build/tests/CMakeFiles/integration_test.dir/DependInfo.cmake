
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/analytic_g_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/analytic_g_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/analytic_g_test.cpp.o.d"
  "/root/repo/tests/integration/determinism_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/determinism_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/integration/failure_injection_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/failure_injection_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/failure_injection_test.cpp.o.d"
  "/root/repo/tests/integration/golden_master_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/golden_master_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/golden_master_test.cpp.o.d"
  "/root/repo/tests/integration/heterogeneity_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/heterogeneity_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/heterogeneity_test.cpp.o.d"
  "/root/repo/tests/integration/properties_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/properties_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/properties_test.cpp.o.d"
  "/root/repo/tests/integration/scaling_system_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/scaling_system_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/scaling_system_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/scal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rms/CMakeFiles/scal_rms.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/scal_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/scal_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/scal_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/scal_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scal_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scal_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
