file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/efficiency_test.cpp.o"
  "CMakeFiles/core_test.dir/core/efficiency_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/experiment_config_test.cpp.o"
  "CMakeFiles/core_test.dir/core/experiment_config_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/isoefficiency_function_test.cpp.o"
  "CMakeFiles/core_test.dir/core/isoefficiency_function_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/isoefficiency_test.cpp.o"
  "CMakeFiles/core_test.dir/core/isoefficiency_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/path_search_test.cpp.o"
  "CMakeFiles/core_test.dir/core/path_search_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/procedure_test.cpp.o"
  "CMakeFiles/core_test.dir/core/procedure_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/report_test.cpp.o"
  "CMakeFiles/core_test.dir/core/report_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/scaling_test.cpp.o"
  "CMakeFiles/core_test.dir/core/scaling_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/sensitivity_test.cpp.o"
  "CMakeFiles/core_test.dir/core/sensitivity_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/tuner_test.cpp.o"
  "CMakeFiles/core_test.dir/core/tuner_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
