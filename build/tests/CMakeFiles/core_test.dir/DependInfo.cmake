
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/efficiency_test.cpp" "tests/CMakeFiles/core_test.dir/core/efficiency_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/efficiency_test.cpp.o.d"
  "/root/repo/tests/core/experiment_config_test.cpp" "tests/CMakeFiles/core_test.dir/core/experiment_config_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/experiment_config_test.cpp.o.d"
  "/root/repo/tests/core/isoefficiency_function_test.cpp" "tests/CMakeFiles/core_test.dir/core/isoefficiency_function_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/isoefficiency_function_test.cpp.o.d"
  "/root/repo/tests/core/isoefficiency_test.cpp" "tests/CMakeFiles/core_test.dir/core/isoefficiency_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/isoefficiency_test.cpp.o.d"
  "/root/repo/tests/core/path_search_test.cpp" "tests/CMakeFiles/core_test.dir/core/path_search_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/path_search_test.cpp.o.d"
  "/root/repo/tests/core/procedure_test.cpp" "tests/CMakeFiles/core_test.dir/core/procedure_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/procedure_test.cpp.o.d"
  "/root/repo/tests/core/report_test.cpp" "tests/CMakeFiles/core_test.dir/core/report_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/report_test.cpp.o.d"
  "/root/repo/tests/core/scaling_test.cpp" "tests/CMakeFiles/core_test.dir/core/scaling_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/scaling_test.cpp.o.d"
  "/root/repo/tests/core/sensitivity_test.cpp" "tests/CMakeFiles/core_test.dir/core/sensitivity_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/sensitivity_test.cpp.o.d"
  "/root/repo/tests/core/tuner_test.cpp" "tests/CMakeFiles/core_test.dir/core/tuner_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/tuner_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/scal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rms/CMakeFiles/scal_rms.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/scal_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/scal_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/scal_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/scal_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scal_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scal_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
