
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/grid/cluster_test.cpp" "tests/CMakeFiles/grid_test.dir/grid/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/cluster_test.cpp.o.d"
  "/root/repo/tests/grid/config_test.cpp" "tests/CMakeFiles/grid_test.dir/grid/config_test.cpp.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/config_test.cpp.o.d"
  "/root/repo/tests/grid/estimator_test.cpp" "tests/CMakeFiles/grid_test.dir/grid/estimator_test.cpp.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/estimator_test.cpp.o.d"
  "/root/repo/tests/grid/joblog_test.cpp" "tests/CMakeFiles/grid_test.dir/grid/joblog_test.cpp.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/joblog_test.cpp.o.d"
  "/root/repo/tests/grid/metrics_test.cpp" "tests/CMakeFiles/grid_test.dir/grid/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/metrics_test.cpp.o.d"
  "/root/repo/tests/grid/middleware_test.cpp" "tests/CMakeFiles/grid_test.dir/grid/middleware_test.cpp.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/middleware_test.cpp.o.d"
  "/root/repo/tests/grid/queueing_theory_test.cpp" "tests/CMakeFiles/grid_test.dir/grid/queueing_theory_test.cpp.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/queueing_theory_test.cpp.o.d"
  "/root/repo/tests/grid/resource_test.cpp" "tests/CMakeFiles/grid_test.dir/grid/resource_test.cpp.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/resource_test.cpp.o.d"
  "/root/repo/tests/grid/sampler_test.cpp" "tests/CMakeFiles/grid_test.dir/grid/sampler_test.cpp.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/sampler_test.cpp.o.d"
  "/root/repo/tests/grid/scheduler_base_test.cpp" "tests/CMakeFiles/grid_test.dir/grid/scheduler_base_test.cpp.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/scheduler_base_test.cpp.o.d"
  "/root/repo/tests/grid/system_test.cpp" "tests/CMakeFiles/grid_test.dir/grid/system_test.cpp.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/system_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/scal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rms/CMakeFiles/scal_rms.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/scal_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/scal_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/scal_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/scal_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scal_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scal_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
