file(REMOVE_RECURSE
  "CMakeFiles/grid_test.dir/grid/cluster_test.cpp.o"
  "CMakeFiles/grid_test.dir/grid/cluster_test.cpp.o.d"
  "CMakeFiles/grid_test.dir/grid/config_test.cpp.o"
  "CMakeFiles/grid_test.dir/grid/config_test.cpp.o.d"
  "CMakeFiles/grid_test.dir/grid/estimator_test.cpp.o"
  "CMakeFiles/grid_test.dir/grid/estimator_test.cpp.o.d"
  "CMakeFiles/grid_test.dir/grid/joblog_test.cpp.o"
  "CMakeFiles/grid_test.dir/grid/joblog_test.cpp.o.d"
  "CMakeFiles/grid_test.dir/grid/metrics_test.cpp.o"
  "CMakeFiles/grid_test.dir/grid/metrics_test.cpp.o.d"
  "CMakeFiles/grid_test.dir/grid/middleware_test.cpp.o"
  "CMakeFiles/grid_test.dir/grid/middleware_test.cpp.o.d"
  "CMakeFiles/grid_test.dir/grid/queueing_theory_test.cpp.o"
  "CMakeFiles/grid_test.dir/grid/queueing_theory_test.cpp.o.d"
  "CMakeFiles/grid_test.dir/grid/resource_test.cpp.o"
  "CMakeFiles/grid_test.dir/grid/resource_test.cpp.o.d"
  "CMakeFiles/grid_test.dir/grid/sampler_test.cpp.o"
  "CMakeFiles/grid_test.dir/grid/sampler_test.cpp.o.d"
  "CMakeFiles/grid_test.dir/grid/scheduler_base_test.cpp.o"
  "CMakeFiles/grid_test.dir/grid/scheduler_base_test.cpp.o.d"
  "CMakeFiles/grid_test.dir/grid/system_test.cpp.o"
  "CMakeFiles/grid_test.dir/grid/system_test.cpp.o.d"
  "grid_test"
  "grid_test.pdb"
  "grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
