# Empty compiler generated dependencies file for isoefficiency_study.
# This may be replaced when dependencies are built.
