file(REMOVE_RECURSE
  "CMakeFiles/isoefficiency_study.dir/isoefficiency_study.cpp.o"
  "CMakeFiles/isoefficiency_study.dir/isoefficiency_study.cpp.o.d"
  "isoefficiency_study"
  "isoefficiency_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isoefficiency_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
