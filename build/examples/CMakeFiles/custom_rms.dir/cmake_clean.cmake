file(REMOVE_RECURSE
  "CMakeFiles/custom_rms.dir/custom_rms.cpp.o"
  "CMakeFiles/custom_rms.dir/custom_rms.cpp.o.d"
  "custom_rms"
  "custom_rms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_rms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
