# Empty compiler generated dependencies file for custom_rms.
# This may be replaced when dependencies are built.
