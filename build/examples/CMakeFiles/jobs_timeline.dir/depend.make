# Empty dependencies file for jobs_timeline.
# This may be replaced when dependencies are built.
