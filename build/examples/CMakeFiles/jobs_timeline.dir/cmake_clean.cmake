file(REMOVE_RECURSE
  "CMakeFiles/jobs_timeline.dir/jobs_timeline.cpp.o"
  "CMakeFiles/jobs_timeline.dir/jobs_timeline.cpp.o.d"
  "jobs_timeline"
  "jobs_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jobs_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
