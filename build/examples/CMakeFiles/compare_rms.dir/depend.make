# Empty dependencies file for compare_rms.
# This may be replaced when dependencies are built.
