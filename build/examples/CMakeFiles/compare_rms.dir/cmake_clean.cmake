file(REMOVE_RECURSE
  "CMakeFiles/compare_rms.dir/compare_rms.cpp.o"
  "CMakeFiles/compare_rms.dir/compare_rms.cpp.o.d"
  "compare_rms"
  "compare_rms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_rms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
