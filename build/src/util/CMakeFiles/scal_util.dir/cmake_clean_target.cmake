file(REMOVE_RECURSE
  "libscal_util.a"
)
