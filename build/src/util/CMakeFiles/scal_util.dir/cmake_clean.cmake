file(REMOVE_RECURSE
  "CMakeFiles/scal_util.dir/ascii_chart.cpp.o"
  "CMakeFiles/scal_util.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/scal_util.dir/csv.cpp.o"
  "CMakeFiles/scal_util.dir/csv.cpp.o.d"
  "CMakeFiles/scal_util.dir/env.cpp.o"
  "CMakeFiles/scal_util.dir/env.cpp.o.d"
  "CMakeFiles/scal_util.dir/ini.cpp.o"
  "CMakeFiles/scal_util.dir/ini.cpp.o.d"
  "CMakeFiles/scal_util.dir/log.cpp.o"
  "CMakeFiles/scal_util.dir/log.cpp.o.d"
  "CMakeFiles/scal_util.dir/rng.cpp.o"
  "CMakeFiles/scal_util.dir/rng.cpp.o.d"
  "CMakeFiles/scal_util.dir/stats.cpp.o"
  "CMakeFiles/scal_util.dir/stats.cpp.o.d"
  "CMakeFiles/scal_util.dir/table.cpp.o"
  "CMakeFiles/scal_util.dir/table.cpp.o.d"
  "libscal_util.a"
  "libscal_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scal_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
