# Empty compiler generated dependencies file for scal_net.
# This may be replaced when dependencies are built.
