file(REMOVE_RECURSE
  "CMakeFiles/scal_net.dir/graph.cpp.o"
  "CMakeFiles/scal_net.dir/graph.cpp.o.d"
  "CMakeFiles/scal_net.dir/metrics.cpp.o"
  "CMakeFiles/scal_net.dir/metrics.cpp.o.d"
  "CMakeFiles/scal_net.dir/network.cpp.o"
  "CMakeFiles/scal_net.dir/network.cpp.o.d"
  "CMakeFiles/scal_net.dir/routing.cpp.o"
  "CMakeFiles/scal_net.dir/routing.cpp.o.d"
  "CMakeFiles/scal_net.dir/topology.cpp.o"
  "CMakeFiles/scal_net.dir/topology.cpp.o.d"
  "libscal_net.a"
  "libscal_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scal_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
