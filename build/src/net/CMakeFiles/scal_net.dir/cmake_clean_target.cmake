file(REMOVE_RECURSE
  "libscal_net.a"
)
