file(REMOVE_RECURSE
  "CMakeFiles/scal_rms.dir/auction.cpp.o"
  "CMakeFiles/scal_rms.dir/auction.cpp.o.d"
  "CMakeFiles/scal_rms.dir/base.cpp.o"
  "CMakeFiles/scal_rms.dir/base.cpp.o.d"
  "CMakeFiles/scal_rms.dir/central.cpp.o"
  "CMakeFiles/scal_rms.dir/central.cpp.o.d"
  "CMakeFiles/scal_rms.dir/factory.cpp.o"
  "CMakeFiles/scal_rms.dir/factory.cpp.o.d"
  "CMakeFiles/scal_rms.dir/hierarchical.cpp.o"
  "CMakeFiles/scal_rms.dir/hierarchical.cpp.o.d"
  "CMakeFiles/scal_rms.dir/lowest.cpp.o"
  "CMakeFiles/scal_rms.dir/lowest.cpp.o.d"
  "CMakeFiles/scal_rms.dir/random_policy.cpp.o"
  "CMakeFiles/scal_rms.dir/random_policy.cpp.o.d"
  "CMakeFiles/scal_rms.dir/receiver_initiated.cpp.o"
  "CMakeFiles/scal_rms.dir/receiver_initiated.cpp.o.d"
  "CMakeFiles/scal_rms.dir/reserve.cpp.o"
  "CMakeFiles/scal_rms.dir/reserve.cpp.o.d"
  "CMakeFiles/scal_rms.dir/sender_initiated.cpp.o"
  "CMakeFiles/scal_rms.dir/sender_initiated.cpp.o.d"
  "CMakeFiles/scal_rms.dir/symmetric.cpp.o"
  "CMakeFiles/scal_rms.dir/symmetric.cpp.o.d"
  "libscal_rms.a"
  "libscal_rms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scal_rms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
