file(REMOVE_RECURSE
  "libscal_rms.a"
)
