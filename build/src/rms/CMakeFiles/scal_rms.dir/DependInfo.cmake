
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rms/auction.cpp" "src/rms/CMakeFiles/scal_rms.dir/auction.cpp.o" "gcc" "src/rms/CMakeFiles/scal_rms.dir/auction.cpp.o.d"
  "/root/repo/src/rms/base.cpp" "src/rms/CMakeFiles/scal_rms.dir/base.cpp.o" "gcc" "src/rms/CMakeFiles/scal_rms.dir/base.cpp.o.d"
  "/root/repo/src/rms/central.cpp" "src/rms/CMakeFiles/scal_rms.dir/central.cpp.o" "gcc" "src/rms/CMakeFiles/scal_rms.dir/central.cpp.o.d"
  "/root/repo/src/rms/factory.cpp" "src/rms/CMakeFiles/scal_rms.dir/factory.cpp.o" "gcc" "src/rms/CMakeFiles/scal_rms.dir/factory.cpp.o.d"
  "/root/repo/src/rms/hierarchical.cpp" "src/rms/CMakeFiles/scal_rms.dir/hierarchical.cpp.o" "gcc" "src/rms/CMakeFiles/scal_rms.dir/hierarchical.cpp.o.d"
  "/root/repo/src/rms/lowest.cpp" "src/rms/CMakeFiles/scal_rms.dir/lowest.cpp.o" "gcc" "src/rms/CMakeFiles/scal_rms.dir/lowest.cpp.o.d"
  "/root/repo/src/rms/random_policy.cpp" "src/rms/CMakeFiles/scal_rms.dir/random_policy.cpp.o" "gcc" "src/rms/CMakeFiles/scal_rms.dir/random_policy.cpp.o.d"
  "/root/repo/src/rms/receiver_initiated.cpp" "src/rms/CMakeFiles/scal_rms.dir/receiver_initiated.cpp.o" "gcc" "src/rms/CMakeFiles/scal_rms.dir/receiver_initiated.cpp.o.d"
  "/root/repo/src/rms/reserve.cpp" "src/rms/CMakeFiles/scal_rms.dir/reserve.cpp.o" "gcc" "src/rms/CMakeFiles/scal_rms.dir/reserve.cpp.o.d"
  "/root/repo/src/rms/sender_initiated.cpp" "src/rms/CMakeFiles/scal_rms.dir/sender_initiated.cpp.o" "gcc" "src/rms/CMakeFiles/scal_rms.dir/sender_initiated.cpp.o.d"
  "/root/repo/src/rms/symmetric.cpp" "src/rms/CMakeFiles/scal_rms.dir/symmetric.cpp.o" "gcc" "src/rms/CMakeFiles/scal_rms.dir/symmetric.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/scal_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/scal_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/scal_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scal_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scal_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
