# Empty compiler generated dependencies file for scal_rms.
# This may be replaced when dependencies are built.
