file(REMOVE_RECURSE
  "CMakeFiles/scal_core.dir/efficiency.cpp.o"
  "CMakeFiles/scal_core.dir/efficiency.cpp.o.d"
  "CMakeFiles/scal_core.dir/experiment_config.cpp.o"
  "CMakeFiles/scal_core.dir/experiment_config.cpp.o.d"
  "CMakeFiles/scal_core.dir/isoefficiency.cpp.o"
  "CMakeFiles/scal_core.dir/isoefficiency.cpp.o.d"
  "CMakeFiles/scal_core.dir/isoefficiency_function.cpp.o"
  "CMakeFiles/scal_core.dir/isoefficiency_function.cpp.o.d"
  "CMakeFiles/scal_core.dir/path_search.cpp.o"
  "CMakeFiles/scal_core.dir/path_search.cpp.o.d"
  "CMakeFiles/scal_core.dir/procedure.cpp.o"
  "CMakeFiles/scal_core.dir/procedure.cpp.o.d"
  "CMakeFiles/scal_core.dir/report.cpp.o"
  "CMakeFiles/scal_core.dir/report.cpp.o.d"
  "CMakeFiles/scal_core.dir/scaling.cpp.o"
  "CMakeFiles/scal_core.dir/scaling.cpp.o.d"
  "CMakeFiles/scal_core.dir/sensitivity.cpp.o"
  "CMakeFiles/scal_core.dir/sensitivity.cpp.o.d"
  "CMakeFiles/scal_core.dir/tuner.cpp.o"
  "CMakeFiles/scal_core.dir/tuner.cpp.o.d"
  "libscal_core.a"
  "libscal_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scal_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
