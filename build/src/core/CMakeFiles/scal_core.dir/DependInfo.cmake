
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/efficiency.cpp" "src/core/CMakeFiles/scal_core.dir/efficiency.cpp.o" "gcc" "src/core/CMakeFiles/scal_core.dir/efficiency.cpp.o.d"
  "/root/repo/src/core/experiment_config.cpp" "src/core/CMakeFiles/scal_core.dir/experiment_config.cpp.o" "gcc" "src/core/CMakeFiles/scal_core.dir/experiment_config.cpp.o.d"
  "/root/repo/src/core/isoefficiency.cpp" "src/core/CMakeFiles/scal_core.dir/isoefficiency.cpp.o" "gcc" "src/core/CMakeFiles/scal_core.dir/isoefficiency.cpp.o.d"
  "/root/repo/src/core/isoefficiency_function.cpp" "src/core/CMakeFiles/scal_core.dir/isoefficiency_function.cpp.o" "gcc" "src/core/CMakeFiles/scal_core.dir/isoefficiency_function.cpp.o.d"
  "/root/repo/src/core/path_search.cpp" "src/core/CMakeFiles/scal_core.dir/path_search.cpp.o" "gcc" "src/core/CMakeFiles/scal_core.dir/path_search.cpp.o.d"
  "/root/repo/src/core/procedure.cpp" "src/core/CMakeFiles/scal_core.dir/procedure.cpp.o" "gcc" "src/core/CMakeFiles/scal_core.dir/procedure.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/scal_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/scal_core.dir/report.cpp.o.d"
  "/root/repo/src/core/scaling.cpp" "src/core/CMakeFiles/scal_core.dir/scaling.cpp.o" "gcc" "src/core/CMakeFiles/scal_core.dir/scaling.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/core/CMakeFiles/scal_core.dir/sensitivity.cpp.o" "gcc" "src/core/CMakeFiles/scal_core.dir/sensitivity.cpp.o.d"
  "/root/repo/src/core/tuner.cpp" "src/core/CMakeFiles/scal_core.dir/tuner.cpp.o" "gcc" "src/core/CMakeFiles/scal_core.dir/tuner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/scal_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/rms/CMakeFiles/scal_rms.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/scal_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/scal_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/scal_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scal_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scal_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
