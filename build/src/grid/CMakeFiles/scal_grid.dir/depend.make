# Empty dependencies file for scal_grid.
# This may be replaced when dependencies are built.
