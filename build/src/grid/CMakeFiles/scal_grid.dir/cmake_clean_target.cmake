file(REMOVE_RECURSE
  "libscal_grid.a"
)
