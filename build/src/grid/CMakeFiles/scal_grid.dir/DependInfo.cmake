
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/cluster.cpp" "src/grid/CMakeFiles/scal_grid.dir/cluster.cpp.o" "gcc" "src/grid/CMakeFiles/scal_grid.dir/cluster.cpp.o.d"
  "/root/repo/src/grid/config.cpp" "src/grid/CMakeFiles/scal_grid.dir/config.cpp.o" "gcc" "src/grid/CMakeFiles/scal_grid.dir/config.cpp.o.d"
  "/root/repo/src/grid/estimator.cpp" "src/grid/CMakeFiles/scal_grid.dir/estimator.cpp.o" "gcc" "src/grid/CMakeFiles/scal_grid.dir/estimator.cpp.o.d"
  "/root/repo/src/grid/joblog.cpp" "src/grid/CMakeFiles/scal_grid.dir/joblog.cpp.o" "gcc" "src/grid/CMakeFiles/scal_grid.dir/joblog.cpp.o.d"
  "/root/repo/src/grid/metrics.cpp" "src/grid/CMakeFiles/scal_grid.dir/metrics.cpp.o" "gcc" "src/grid/CMakeFiles/scal_grid.dir/metrics.cpp.o.d"
  "/root/repo/src/grid/middleware.cpp" "src/grid/CMakeFiles/scal_grid.dir/middleware.cpp.o" "gcc" "src/grid/CMakeFiles/scal_grid.dir/middleware.cpp.o.d"
  "/root/repo/src/grid/resource.cpp" "src/grid/CMakeFiles/scal_grid.dir/resource.cpp.o" "gcc" "src/grid/CMakeFiles/scal_grid.dir/resource.cpp.o.d"
  "/root/repo/src/grid/sampler.cpp" "src/grid/CMakeFiles/scal_grid.dir/sampler.cpp.o" "gcc" "src/grid/CMakeFiles/scal_grid.dir/sampler.cpp.o.d"
  "/root/repo/src/grid/scheduler.cpp" "src/grid/CMakeFiles/scal_grid.dir/scheduler.cpp.o" "gcc" "src/grid/CMakeFiles/scal_grid.dir/scheduler.cpp.o.d"
  "/root/repo/src/grid/system.cpp" "src/grid/CMakeFiles/scal_grid.dir/system.cpp.o" "gcc" "src/grid/CMakeFiles/scal_grid.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/scal_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scal_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/scal_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/scal_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
