file(REMOVE_RECURSE
  "CMakeFiles/scal_grid.dir/cluster.cpp.o"
  "CMakeFiles/scal_grid.dir/cluster.cpp.o.d"
  "CMakeFiles/scal_grid.dir/config.cpp.o"
  "CMakeFiles/scal_grid.dir/config.cpp.o.d"
  "CMakeFiles/scal_grid.dir/estimator.cpp.o"
  "CMakeFiles/scal_grid.dir/estimator.cpp.o.d"
  "CMakeFiles/scal_grid.dir/joblog.cpp.o"
  "CMakeFiles/scal_grid.dir/joblog.cpp.o.d"
  "CMakeFiles/scal_grid.dir/metrics.cpp.o"
  "CMakeFiles/scal_grid.dir/metrics.cpp.o.d"
  "CMakeFiles/scal_grid.dir/middleware.cpp.o"
  "CMakeFiles/scal_grid.dir/middleware.cpp.o.d"
  "CMakeFiles/scal_grid.dir/resource.cpp.o"
  "CMakeFiles/scal_grid.dir/resource.cpp.o.d"
  "CMakeFiles/scal_grid.dir/sampler.cpp.o"
  "CMakeFiles/scal_grid.dir/sampler.cpp.o.d"
  "CMakeFiles/scal_grid.dir/scheduler.cpp.o"
  "CMakeFiles/scal_grid.dir/scheduler.cpp.o.d"
  "CMakeFiles/scal_grid.dir/system.cpp.o"
  "CMakeFiles/scal_grid.dir/system.cpp.o.d"
  "libscal_grid.a"
  "libscal_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scal_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
