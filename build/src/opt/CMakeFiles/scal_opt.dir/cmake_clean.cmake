file(REMOVE_RECURSE
  "CMakeFiles/scal_opt.dir/annealing.cpp.o"
  "CMakeFiles/scal_opt.dir/annealing.cpp.o.d"
  "CMakeFiles/scal_opt.dir/search.cpp.o"
  "CMakeFiles/scal_opt.dir/search.cpp.o.d"
  "CMakeFiles/scal_opt.dir/space.cpp.o"
  "CMakeFiles/scal_opt.dir/space.cpp.o.d"
  "libscal_opt.a"
  "libscal_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scal_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
