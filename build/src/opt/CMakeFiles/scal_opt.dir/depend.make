# Empty dependencies file for scal_opt.
# This may be replaced when dependencies are built.
