file(REMOVE_RECURSE
  "libscal_opt.a"
)
