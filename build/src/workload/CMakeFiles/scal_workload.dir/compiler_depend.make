# Empty compiler generated dependencies file for scal_workload.
# This may be replaced when dependencies are built.
