file(REMOVE_RECURSE
  "CMakeFiles/scal_workload.dir/generator.cpp.o"
  "CMakeFiles/scal_workload.dir/generator.cpp.o.d"
  "CMakeFiles/scal_workload.dir/job.cpp.o"
  "CMakeFiles/scal_workload.dir/job.cpp.o.d"
  "CMakeFiles/scal_workload.dir/trace.cpp.o"
  "CMakeFiles/scal_workload.dir/trace.cpp.o.d"
  "libscal_workload.a"
  "libscal_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scal_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
