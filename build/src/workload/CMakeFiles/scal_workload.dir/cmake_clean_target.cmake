file(REMOVE_RECURSE
  "libscal_workload.a"
)
