file(REMOVE_RECURSE
  "libscal_sim.a"
)
