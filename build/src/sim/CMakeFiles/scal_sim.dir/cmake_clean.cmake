file(REMOVE_RECURSE
  "CMakeFiles/scal_sim.dir/entity.cpp.o"
  "CMakeFiles/scal_sim.dir/entity.cpp.o.d"
  "CMakeFiles/scal_sim.dir/event_queue.cpp.o"
  "CMakeFiles/scal_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/scal_sim.dir/server.cpp.o"
  "CMakeFiles/scal_sim.dir/server.cpp.o.d"
  "CMakeFiles/scal_sim.dir/simulator.cpp.o"
  "CMakeFiles/scal_sim.dir/simulator.cpp.o.d"
  "libscal_sim.a"
  "libscal_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scal_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
