// Workload traces: generate a synthetic moldable workload (with the
// diurnal modulation and hot-spot skew extensions), persist it, replay
// it bit-exactly through two different RMS policies, and show that the
// pinned trace makes cross-policy comparisons workload-identical.
//
//   ./trace_workflow [jobs] [path]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "rms/scenario.hpp"
#include "util/table.hpp"
#include "workload/trace.hpp"

int main(int argc, char** argv) {
  using namespace scal;
  using util::Table;

  const std::size_t n_jobs =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3000;
  const std::string path =
      argc > 2 ? argv[2] : std::string("/tmp/scal_example_trace.csv");

  // A bursty, skewed workload: day/night modulation plus a hot cluster.
  workload::WorkloadConfig wl;
  wl.mean_interarrival = 0.5;
  wl.clusters = 10;
  wl.diurnal_amplitude = 0.6;
  wl.diurnal_period = 500.0;
  wl.origin_hotspot_weight = 0.3;
  workload::WorkloadGenerator gen(wl, util::RandomStream(7, "trace-demo"));
  const auto jobs = gen.generate_until(1e18, n_jobs);
  workload::save_trace_file(jobs, path);

  const workload::TraceStats stats = workload::summarize(jobs);
  std::cout << "Generated " << stats.jobs << " jobs ("
            << stats.local_jobs << " LOCAL / " << stats.remote_jobs
            << " REMOTE), span " << stats.span
            << " t.u., mean demand " << stats.mean_exec_time
            << ", saved to " << path << "\n\n";

  // Replay the identical trace through two policies.
  grid::GridConfig config;
  config.topology.nodes = 200;
  config.horizon = stats.span + 200.0;
  config.trace_path = path;

  Table table({"policy", "arrived", "succeeded", "missed", "G", "E"});
  for (const grid::RmsKind kind :
       {grid::RmsKind::kLowest, grid::RmsKind::kSymmetric}) {
    const auto r = Scenario(config).rms(kind).run();
    table.add_row({
        grid::to_string(kind),
        std::to_string(r.jobs_arrived),
        std::to_string(r.jobs_succeeded),
        std::to_string(r.jobs_missed_deadline),
        Table::fixed(r.G(), 1),
        Table::fixed(r.efficiency(), 3),
    });
  }
  table.print(std::cout);
  std::cout << "\nBoth rows saw byte-identical arrivals (same trace file); "
               "every difference is the policy.\n";
  std::remove(path.c_str());
  return 0;
}
