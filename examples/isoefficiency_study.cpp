// Walk the paper's four-step scalability measurement procedure
// (Figure 1) end to end, narrating each step, for two contrasting RMS
// models (CENTRAL vs LOWEST) on a small Case-1 sweep.
//
//   ./isoefficiency_study [k_max] [evals]

#include <cstdlib>
#include <iostream>

#include "core/procedure.hpp"
#include "core/report.hpp"
#include "rms/scenario.hpp"

int main(int argc, char** argv) {
  using namespace scal;

  const double k_max = argc > 1 ? std::strtod(argv[1], nullptr) : 4.0;
  const std::size_t evals =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 10;

  grid::GridConfig base;
  base.topology.nodes = 150;
  base.horizon = 800.0;
  base.workload.mean_interarrival = 0.55;
  base.seed = 42;

  core::ProcedureConfig procedure;
  procedure.scase = core::ScalingCase::case1_network_size();
  procedure.scale_factors.clear();
  for (double k = 1.0; k <= k_max; k += 1.0) {
    procedure.scale_factors.push_back(k);
  }
  procedure.tuner.evaluations = evals;
  procedure.warm_evaluations = evals / 2 + 1;
  procedure.tuner.band = 0.04;

  std::cout << "== Step 1: choose a feasible efficiency E0\n";
  base.rms = grid::RmsKind::kLowest;
  const double e0 = Scenario(base).run().efficiency();
  procedure.tuner.e0 = e0;
  std::cout << "   reference run at k=1 gives E0 = " << e0 << " (band +/- "
            << procedure.tuner.band << ")\n\n";

  std::cout << "== Steps 2+3: scale the RP along " << procedure.scase.name
            << "\n   and tune the enablers by simulated annealing at each "
               "k\n\n";
  const auto progress = [](grid::RmsKind rms, double k,
                           const core::TuneOutcome& outcome) {
    std::cout << "   " << grid::to_string(rms) << " k=" << k
              << ": tuned tau=" << outcome.tuning.update_interval
              << " L_p=" << outcome.tuning.neighborhood_size
              << " delay x" << outcome.tuning.link_delay_scale
              << " -> G=" << outcome.result.G()
              << " E=" << outcome.result.efficiency()
              << (outcome.feasible ? "" : " [band missed]") << "\n";
  };
  const auto results = core::measure_all(
      base, {grid::RmsKind::kCentral, grid::RmsKind::kLowest}, procedure,
      core::default_runner(), progress);

  std::cout << "\n== Step 4: the scalability metric — slope of G(k)\n\n";
  for (const auto& result : results) {
    std::cout << core::render_case_table(result) << "\n";
  }
  std::cout << core::render_overhead_chart(results,
                                           "G(k), CENTRAL vs LOWEST")
            << "\n";
  std::cout << "Summary\n" << core::render_summary_table(results);
  std::cout << "\nReading: a growing dg/dk (CENTRAL) marks an unscalable "
               "manager; a flat or\nshrinking one (LOWEST) marks a "
               "scalable one — Equation (2): useful work must\ngrow at "
               "least as fast as c * g(k).\n";
  return 0;
}
