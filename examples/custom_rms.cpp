// Implementing a custom RMS policy against the public scheduler API.
//
// The policy below ("ROUND-ROBIN") ignores load information entirely and
// sprays jobs across its cluster cyclically, transferring every REMOTE
// job to the next cluster in a ring.  It exists to show the extension
// surface: derive from rms::DistributedSchedulerBase, override
// handle_job / handle_message, and hand a custom factory to
// Scenario::scheduler().  The example then measures it against LOWEST.

#include <iostream>
#include <memory>

#include "rms/base.hpp"
#include "rms/scenario.hpp"
#include "util/table.hpp"

namespace {

class RoundRobinScheduler : public scal::rms::DistributedSchedulerBase {
 public:
  using DistributedSchedulerBase::DistributedSchedulerBase;

 protected:
  void handle_job(scal::workload::Job job) override {
    using scal::workload::JobClass;
    if (job.job_class == JobClass::kRemote &&
        system().cluster_count() > 1) {
      // Ring handoff: REMOTE jobs always move one cluster to the right.
      const auto next = static_cast<scal::grid::ClusterId>(
          (cluster() + 1) % system().cluster_count());
      transfer_job(next, std::move(job));
      return;
    }
    const auto& t = table(cluster());
    const auto r = static_cast<scal::grid::ResourceIndex>(
        next_slot_++ % t.size());
    dispatch(cluster(), r, std::move(job));
  }

  void handle_message(const scal::grid::RmsMessage& msg) override {
    if (msg.kind == scal::grid::MsgKind::kJobTransfer && msg.job) {
      // Arrived via the ring: place it locally, round-robin.
      scal::workload::Job job = *msg.job;
      const auto& t = table(cluster());
      const auto r = static_cast<scal::grid::ResourceIndex>(
          next_slot_++ % t.size());
      dispatch(cluster(), r, std::move(job));
      return;
    }
    DistributedSchedulerBase::handle_message(msg);
  }

 private:
  std::size_t next_slot_ = 0;
};

scal::grid::SimulationResult run_round_robin(scal::grid::GridConfig config) {
  scal::grid::SchedulerFactory factory =
      [](scal::grid::GridSystem& system, scal::sim::EntityId id,
         scal::grid::ClusterId cluster, scal::net::NodeId node) {
        return std::make_unique<RoundRobinScheduler>(system, id, cluster,
                                                     node);
      };
  return scal::Scenario(std::move(config))
      .scheduler(std::move(factory))
      .run();
}

}  // namespace

int main() {
  using namespace scal;
  using util::Table;

  grid::GridConfig config;
  config.topology.nodes = 300;
  config.horizon = 1500.0;
  config.workload.mean_interarrival = 0.35;

  std::cout << "Custom policy (ROUND-ROBIN ring) vs LOWEST on "
            << config.topology.nodes << " nodes\n\n";

  const grid::SimulationResult rr = run_round_robin(config);
  const grid::SimulationResult lo =
      Scenario(config).rms(grid::RmsKind::kLowest).run();

  Table table({"metric", "ROUND-ROBIN", "LOWEST"});
  table.add_row({"G (RMS overhead)", Table::fixed(rr.G(), 1),
                 Table::fixed(lo.G(), 1)});
  table.add_row({"efficiency E", Table::fixed(rr.efficiency(), 3),
                 Table::fixed(lo.efficiency(), 3)});
  table.add_row({"jobs succeeded", std::to_string(rr.jobs_succeeded),
                 std::to_string(lo.jobs_succeeded)});
  table.add_row({"missed deadline", std::to_string(rr.jobs_missed_deadline),
                 std::to_string(lo.jobs_missed_deadline)});
  table.add_row({"mean response", Table::fixed(rr.mean_response, 1),
                 Table::fixed(lo.mean_response, 1)});
  table.add_row({"transfers", std::to_string(rr.transfers),
                 std::to_string(lo.transfers)});
  table.print(std::cout);
  std::cout << "\nLoad-blind placement wastes the benefit window: LOWEST "
               "should win on success\ncount at equal (or lower) overhead "
               "-- the reason status estimation exists at all.\n";
  return 0;
}
