// Compare all seven RMS models on one grid configuration: the paper's
// Section 3.3 lineup, side by side, with the work terms, efficiency,
// job outcomes, and protocol traffic of each.
//
//   ./compare_rms [nodes] [mean_interarrival] [seed]

#include <cstdlib>
#include <iostream>

#include "rms/scenario.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace scal;
  using util::Table;

  grid::GridConfig config;
  config.topology.nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;
  config.workload.mean_interarrival =
      argc > 2 ? std::strtod(argv[2], nullptr) : 0.25;
  config.seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;
  config.horizon = 1500.0;

  std::cout << "Comparing the seven RMS models on " << config.topology.nodes
            << " nodes (" << config.cluster_count()
            << " clusters), horizon " << config.horizon << "\n\n";

  const std::vector<grid::RmsKind> kinds(
      grid::kAllRmsKinds,
      grid::kAllRmsKinds + std::size(grid::kAllRmsKinds));
  const auto runs = Scenario::run_kinds(Scenario(config), kinds);

  Table table({"RMS", "G(k)", "E", "succeeded", "missed", "unfinished",
               "mean resp", "polls", "transfers", "auctions", "adverts"});
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const grid::RmsKind kind = kinds[i];
    const grid::SimulationResult& r = runs[i];
    table.add_row({
        grid::to_string(kind),
        Table::fixed(r.G(), 1),
        Table::fixed(r.efficiency(), 3),
        std::to_string(r.jobs_succeeded),
        std::to_string(r.jobs_missed_deadline),
        std::to_string(r.jobs_unfinished),
        Table::fixed(r.mean_response, 1),
        std::to_string(r.polls),
        std::to_string(r.transfers),
        std::to_string(r.auctions),
        std::to_string(r.adverts),
    });
  }
  table.print(std::cout);
  std::cout << "\nG(k) is the RMS overhead (scheduler + estimator + "
               "middleware work-in-system time);\nE = F / (F + G + H) is "
               "the paper's efficiency.\n";
  return 0;
}
