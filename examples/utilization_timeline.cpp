// Watch the grid breathe: run one simulation with the state sampler and
// a pulsing (diurnal) workload, then chart pool utilization, the
// hottest cluster, and the scheduler backlog over time.
//
//   ./utilization_timeline [RMS] [amplitude] [probe.csv]
//
// The optional third argument writes the run's time-series probe CSV
// (cumulative F/G/H, windowed efficiency, utilizations) on the same
// cadence as the charts below.

#include <cstdlib>
#include <iostream>

#include "grid/sampler.hpp"
#include "obs/telemetry.hpp"
#include "rms/scenario.hpp"
#include "util/ascii_chart.hpp"

int main(int argc, char** argv) {
  using namespace scal;

  grid::GridConfig config;
  config.rms = argc > 1 ? grid::rms_from_string(argv[1])
                        : grid::RmsKind::kLowest;
  config.topology.nodes = 200;
  config.horizon = 2000.0;
  config.workload.mean_interarrival = 0.55;
  config.workload.diurnal_amplitude =
      argc > 2 ? std::strtod(argv[2], nullptr) : 0.6;
  config.workload.diurnal_period = 600.0;
  config.sample_interval = 20.0;

  obs::TelemetryConfig tc;
  if (argc > 3) {
    tc.probe_path = argv[3];
    tc.probe_interval = config.sample_interval;
  }
  tc.label = "utilization_timeline";
  obs::Telemetry telemetry(tc);

  auto system = Scenario(config)
                    .telemetry(tc.any_enabled() ? &telemetry : nullptr)
                    .build();
  const grid::SimulationResult r = system->run();
  const auto& samples = system->sampler()->samples();

  util::Series busy{"pool busy", {}, {}};
  util::Series hottest{"hottest cluster", {}, {}};
  for (const grid::StateSample& s : samples) {
    busy.x.push_back(s.at);
    busy.y.push_back(s.pool_busy_fraction);
    hottest.x.push_back(s.at);
    hottest.y.push_back(s.hottest_cluster_busy);
  }
  util::AsciiChart chart(
      grid::to_string(config.rms) + " under a pulsing workload",
      "time", "busy fraction");
  chart.add_series(busy);
  chart.add_series(hottest);
  std::cout << chart.render() << "\n";

  util::Series backlog{"scheduler backlog", {}, {}};
  for (const grid::StateSample& s : samples) {
    backlog.x.push_back(s.at);
    backlog.y.push_back(static_cast<double>(s.scheduler_backlog));
  }
  util::AsciiChart chart2("RMS backlog over time", "time",
                          "queued work items");
  chart2.add_series(backlog);
  std::cout << chart2.render() << "\n";

  std::cout << "jobs " << r.jobs_succeeded << "/" << r.jobs_arrived
            << " within deadline; E = " << r.efficiency() << "\n";

  if (tc.any_enabled()) {
    if (telemetry.export_all()) {
      std::cout << "probe series written to " << tc.probe_path << "\n";
    } else {
      std::cout << "telemetry export failed (see warnings above)\n";
    }
  }
  return 0;
}
