// Quickstart: build a small managed grid, run one RMS policy, and print
// the work terms (F, G, H), the efficiency, and the job outcomes.
//
//   ./quickstart [RMS] [nodes] [seed]
//   RMS in {CENTRAL, LOWEST, RESERVE, AUCTION, S-I, R-I, Sy-I}

#include <cstdlib>
#include <iostream>

#include "rms/scenario.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace scal;

  grid::GridConfig config;
  config.rms = argc > 1 ? grid::rms_from_string(argv[1])
                        : grid::RmsKind::kLowest;
  config.topology.nodes = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 200;
  config.seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;
  config.horizon = 1500.0;
  config.workload.mean_interarrival = 4.0;  // ~375 jobs over the horizon

  std::cout << "Simulating " << grid::to_string(config.rms) << " on "
            << config.topology.nodes << " nodes ("
            << config.cluster_count() << " clusters), seed " << config.seed
            << "...\n\n";

  const grid::SimulationResult r = Scenario(config).run();

  util::Table table({"metric", "value"});
  table.set_align(1, util::Align::kRight);
  table.add_row({"useful work F", util::Table::fixed(r.F, 1)});
  table.add_row({"RMS overhead G", util::Table::fixed(r.G(), 1)});
  table.add_row({"  scheduler part", util::Table::fixed(r.G_scheduler, 1)});
  table.add_row({"  estimator part", util::Table::fixed(r.G_estimator, 1)});
  table.add_row({"  middleware part", util::Table::fixed(r.G_middleware, 1)});
  table.add_row({"RP overhead H", util::Table::fixed(r.H(), 1)});
  table.add_row({"  control", util::Table::fixed(r.H_control, 1)});
  table.add_row({"  wasted (missed deadline)",
                 util::Table::fixed(r.H_wasted, 1)});
  table.add_row({"efficiency E", util::Table::fixed(r.efficiency(), 3)});
  table.add_row({"jobs arrived", std::to_string(r.jobs_arrived)});
  table.add_row({"jobs local/remote", std::to_string(r.jobs_local) + "/" +
                                          std::to_string(r.jobs_remote)});
  table.add_row({"jobs completed", std::to_string(r.jobs_completed)});
  table.add_row({"  within deadline", std::to_string(r.jobs_succeeded)});
  table.add_row({"  missed deadline",
                 std::to_string(r.jobs_missed_deadline)});
  table.add_row({"jobs unfinished at horizon",
                 std::to_string(r.jobs_unfinished)});
  table.add_row({"throughput (jobs/t.u.)",
                 util::Table::fixed(r.throughput, 3)});
  table.add_row({"mean response", util::Table::fixed(r.mean_response, 1)});
  table.add_row({"p95 response", util::Table::fixed(r.p95_response, 1)});
  table.add_row({"polls / transfers", std::to_string(r.polls) + " / " +
                                          std::to_string(r.transfers)});
  table.add_row({"auctions / adverts", std::to_string(r.auctions) + " / " +
                                           std::to_string(r.adverts)});
  table.add_row({"updates received (suppressed)",
                 std::to_string(r.updates_received) + " (" +
                     std::to_string(r.updates_suppressed) + ")"});
  table.add_row({"network messages", std::to_string(r.network_messages)});
  table.add_row({"sim events", std::to_string(r.events_dispatched)});
  table.print(std::cout);
  return 0;
}
