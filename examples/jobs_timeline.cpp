// Where does response time go?  Runs one simulation with the job log
// enabled, prints a few complete job timelines, and breaks the mean
// response into placement latency (arrival -> dispatch), queueing
// (dispatch -> start), and service (start -> complete) per policy.
//
//   ./jobs_timeline [RMS] [nodes] [trace.json]
//
// The optional third argument writes a Chrome trace of the run — job
// lifecycle spans, scheduler busy spans, protocol message instants —
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.

#include <cstdlib>
#include <iostream>

#include "obs/telemetry.hpp"
#include "rms/scenario.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace scal;
  using util::Table;

  grid::GridConfig config;
  config.rms = argc > 1 ? grid::rms_from_string(argv[1])
                        : grid::RmsKind::kLowest;
  config.topology.nodes = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 200;
  config.horizon = 1200.0;
  config.workload.mean_interarrival = 0.45;
  config.job_log = true;

  obs::TelemetryConfig tc;
  if (argc > 3) tc.trace_path = argv[3];
  tc.label = "jobs_timeline";
  obs::Telemetry telemetry(tc);

  auto system = Scenario(config)
                    .telemetry(tc.any_enabled() ? &telemetry : nullptr)
                    .build();
  const grid::SimulationResult r = system->run();
  const grid::JobLog& log = system->job_log();

  std::cout << grid::to_string(config.rms) << " on "
            << config.topology.nodes << " nodes: " << r.jobs_completed
            << " jobs completed, " << log.size()
            << " lifecycle events logged\n\nSample timelines:\n";

  std::size_t shown = 0;
  for (const grid::JobLogRecord& rec : log.records()) {
    if (rec.event != grid::JobEvent::kArrival) continue;
    const auto timeline = log.timeline(rec.job);
    if (timeline.size() < 4 || shown >= 3) continue;
    ++shown;
    std::cout << "  job " << rec.job << ":";
    for (const auto& ev : timeline) {
      std::cout << "  " << grid::to_string(ev.event) << "@"
                << Table::fixed(ev.at, 1);
    }
    std::cout << "  (hops=" << log.transfer_hops(rec.job) << ")\n";
  }

  const auto placement =
      log.delays(grid::JobEvent::kArrival, grid::JobEvent::kDispatch);
  const auto queueing =
      log.delays(grid::JobEvent::kDispatch, grid::JobEvent::kStart);
  const auto service =
      log.delays(grid::JobEvent::kStart, grid::JobEvent::kComplete);

  std::cout << "\nResponse-time decomposition (mean / p95, time units):\n";
  Table table({"phase", "mean", "p95", "samples"});
  auto row = [&](const char* name, const util::Samples& s) {
    table.add_row({name, Table::fixed(s.mean(), 2),
                   Table::fixed(s.percentile(95.0), 2),
                   std::to_string(s.count())});
  };
  row("placement (arrival->dispatch)", placement);
  row("queueing  (dispatch->start)", queueing);
  row("service   (start->complete)", service);
  table.print(std::cout);
  std::cout << "\nOverall mean response: " << Table::fixed(r.mean_response, 2)
            << "  (policies differ mostly in the first two rows)\n";

  if (tc.any_enabled()) {
    if (telemetry.export_all()) {
      std::cout << "\ntrace written to " << tc.trace_path
                << " — load it in Perfetto to see the spans this table "
                << "summarizes\n";
    } else {
      std::cout << "\ntelemetry export failed (see warnings above)\n";
    }
  }
  return 0;
}
