// Config-file-driven experiment runner: describe an experiment in an
// INI file (see examples/configs/), run the paper's measurement
// procedure over it, and print the figure-style report.
//
//   ./run_experiment <config.ini>
//   ./run_experiment --dump-defaults       # print a template config

#include <iostream>

#include "core/experiment_config.hpp"
#include "core/report.hpp"
#include "rms/factory.hpp"

int main(int argc, char** argv) {
  using namespace scal;
  if (argc != 2) {
    std::cerr << "usage: " << argv[0] << " <config.ini> | --dump-defaults\n";
    return 2;
  }

  if (std::string(argv[1]) == "--dump-defaults") {
    core::ExperimentConfig defaults;
    defaults.grid.topology.nodes = 250;
    std::cout << core::experiment_to_ini(defaults).to_string();
    return 0;
  }

  core::ExperimentConfig config;
  try {
    config = core::load_experiment(argv[1]);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  std::vector<grid::RmsKind> kinds = config.kinds;
  if (kinds.empty()) {
    kinds.assign(grid::kAllRmsKinds,
                 grid::kAllRmsKinds + std::size(grid::kAllRmsKinds));
  }

  std::cout << "Experiment from " << argv[1] << "\n"
            << config.procedure.scase.name << ", E0 = "
            << config.procedure.tuner.e0 << " +/- "
            << config.procedure.tuner.band << "\n\n";

  const auto progress = [](grid::RmsKind rms, double k,
                           const core::TuneOutcome& outcome) {
    std::cout << "  " << grid::to_string(rms) << " k=" << k
              << "  G=" << outcome.result.G()
              << "  E=" << outcome.result.efficiency()
              << (outcome.feasible ? "" : "  [band missed]") << "\n";
  };
  const auto results = core::measure_all(config.grid, kinds,
                                         config.procedure,
                                         core::default_runner(), progress);

  std::cout << "\n"
            << core::render_overhead_chart(results, "G(k)") << "\n";
  for (const auto& r : results) {
    std::cout << core::render_case_table(r) << "\n";
  }
  std::cout << "Summary\n" << core::render_summary_table(results);
  if (!config.csv_path.empty()) {
    core::write_case_csv(results, config.csv_path);
    std::cout << "\nseries written to " << config.csv_path << "\n";
  }
  return 0;
}
